"""Declarative experiment API: specs, a registry and a figure-wide runner.

The paper's contribution is a *family* of comparable experiments run
under one simulator (Figs. 4.1–4.8, Table 4.2, the ablations).  This
module makes that family first-class:

* :class:`ExperimentSpec` — a declarative description of one figure or
  table: identity, axes, the list of :class:`CurveSpec` factories that
  produce ``(config, workload)`` pairs, ``fast``/``full``
  :class:`SweepProfile`\\ s, expected-shape notes and output formatting.
* :func:`experiment` — a decorator registering a spec factory under a
  stable id (``@experiment("fig4_1")``).  The CLI, ``report_all``,
  exports and the benchmarks all resolve experiments through this
  registry; nothing imports figure modules by name.
* :class:`ExperimentRunner` — evaluates one or many experiments.  In
  parallel mode it schedules *all points of all curves of all selected
  experiments* through a single work queue, so ``--all --parallel``
  saturates every core across figure boundaries instead of
  parallelizing one series at a time.

Determinism: every point gets the same :func:`~repro.experiments.runner.point_seed`
as the historical serial :func:`~repro.experiments.runner.sweep` path,
and saturation truncation is applied post-hoc per curve, so serial and
parallel runs produce byte-identical :class:`ExperimentResult`\\ s.
"""

from __future__ import annotations

import importlib
import pkgutil
import warnings
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.metrics import Results
from repro.experiments.runner import (
    ExperimentResult,
    Series,
    SeriesPoint,
    _append_point,
    _evaluate_point,
    evaluate_points_parallel,
    point_seed,
)

__all__ = [
    "CurveSpec",
    "ExperimentRunner",
    "ExperimentSpec",
    "SweepProfile",
    "all_experiments",
    "experiment",
    "experiment_ids",
    "get_experiment",
    "legacy_run",
    "load_builtin_specs",
    "register",
    "unregister",
]

#: Profile names every spec must provide.
PROFILES = ("fast", "full")


@dataclass(frozen=True)
class SweepProfile:
    """One resolution of a sweep: the x values and run lengths."""

    xs: Tuple[float, ...]
    warmup: float = 3.0
    duration: float = 8.0


@dataclass(frozen=True)
class CurveSpec:
    """One labelled curve: ``build(x) -> (config, workload)``.

    ``build`` is a plain data-producing callable — it runs in the
    driving process for every point; only the resulting
    ``(config, workload)`` pair (picklable data) is shipped to worker
    processes.
    """

    label: str
    build: Callable[[float], Tuple]


#: Curves may depend on the profile (e.g. the trace experiments use a
#: shorter synthetic trace under ``fast``), so a spec can hold either a
#: static list or a factory taking the profile name.
CurveSource = Union[Sequence[CurveSpec], Callable[[str], Sequence[CurveSpec]]]


@dataclass
class ExperimentSpec:
    """Declarative description of one figure/table experiment."""

    id: str
    title: str
    x_label: str
    y_label: str
    curves: CurveSource
    profiles: Mapping[str, SweepProfile]
    notes: Tuple[str, ...] = ()
    #: Table-cell metric (default: mean response time in ms).
    metric: Optional[Callable[[Results], float]] = None
    metric_fmt: str = "{:8.2f}"
    #: Full custom renderer; overrides ``metric``/``metric_fmt``.
    renderer: Optional[Callable[[ExperimentResult], str]] = None
    #: End each curve at its first saturated point (the paper stops
    #: plotting there).  Hit-ratio tables keep every cell instead.
    truncate_on_saturation: bool = True
    seed: int = 1

    def __post_init__(self) -> None:
        missing = [name for name in PROFILES if name not in self.profiles]
        if missing:
            raise ValueError(
                f"experiment {self.id!r} lacks sweep profile(s): {missing}"
            )

    def profile(self, name: str) -> SweepProfile:
        try:
            return self.profiles[name]
        except KeyError:
            raise KeyError(
                f"experiment {self.id!r} has no profile {name!r} "
                f"(available: {sorted(self.profiles)})"
            ) from None

    def curves_for(self, profile_name: str) -> List[CurveSpec]:
        source = self.curves
        if callable(source):
            source = source(profile_name)
        return list(source)

    def render(self, result: ExperimentResult) -> str:
        """Format a result the way this experiment is reported."""
        if self.renderer is not None:
            return self.renderer(result)
        return result.to_table(metric=self.metric, fmt=self.metric_fmt)


# ---------------------------------------------------------------------------
# Registry


#: Registration order is preserved; ids are unique.
_FACTORIES: Dict[str, Callable[[], ExperimentSpec]] = {}
_SPECS: Dict[str, ExperimentSpec] = {}
#: "unloaded" -> "loading" (re-entrancy guard) -> "loaded"; a failed
#: import resets to "unloaded" so the next call retries instead of
#: serving a half-populated registry.
_BUILTINS_STATE = "unloaded"


def register(exp_id: str, factory: Callable[[], ExperimentSpec]) -> None:
    """Register ``factory`` (returning an :class:`ExperimentSpec`) as
    ``exp_id``.  Usually used through the :func:`experiment` decorator."""
    if exp_id in _FACTORIES:
        raise ValueError(f"experiment id {exp_id!r} is already registered")
    _FACTORIES[exp_id] = factory


def unregister(exp_id: str) -> None:
    """Remove a registered experiment (tests and interactive use)."""
    _FACTORIES.pop(exp_id, None)
    _SPECS.pop(exp_id, None)


def experiment(exp_id: str):
    """Decorator: register the decorated zero-argument spec factory.

    ::

        @experiment("fig4_1")
        def spec() -> ExperimentSpec:
            return ExperimentSpec(id="fig4_1", ...)
    """

    def decorate(factory: Callable[[], ExperimentSpec]):
        register(exp_id, factory)
        return factory

    return decorate


def load_builtin_specs() -> None:
    """Import every module of :mod:`repro.experiments` once, so their
    ``@experiment`` registrations run.

    Discovery goes through :mod:`pkgutil`, so no experiment module is
    ever named outside this package — adding a figure module is enough
    to make it appear in the CLI, ``report_all`` and the exports.
    """
    global _BUILTINS_STATE
    if _BUILTINS_STATE != "unloaded":
        return
    _BUILTINS_STATE = "loading"
    import repro.experiments as package

    try:
        for info in pkgutil.iter_modules(package.__path__):
            if info.name.startswith("_"):
                continue
            importlib.import_module(f"{package.__name__}.{info.name}")
    except BaseException:
        _BUILTINS_STATE = "unloaded"
        raise
    _BUILTINS_STATE = "loaded"


def get_experiment(exp_id: str) -> ExperimentSpec:
    """Resolve an id to its (cached) :class:`ExperimentSpec`."""
    load_builtin_specs()
    spec = _SPECS.get(exp_id)
    if spec is not None:
        return spec
    factory = _FACTORIES.get(exp_id)
    if factory is None:
        raise KeyError(
            f"unknown experiment {exp_id!r} "
            f"(registered: {', '.join(experiment_ids())})"
        )
    spec = factory()
    if spec.id != exp_id:
        raise ValueError(
            f"spec factory registered as {exp_id!r} produced a spec "
            f"with id {spec.id!r}"
        )
    _SPECS[exp_id] = spec
    return spec


def experiment_ids() -> List[str]:
    """All registered ids, in registration order."""
    load_builtin_specs()
    return list(_FACTORIES)


def legacy_run(exp_id: str, fast: bool = False,
               duration: Optional[float] = None,
               parallel: bool = False) -> ExperimentResult:
    """Engine behind the deprecated module-level ``run()`` wrappers.

    Emits the DeprecationWarning at the wrapper's call site
    (``stacklevel=3``) and forwards to the registry + runner.
    """
    warnings.warn(
        f"module-level run() is deprecated; use repro.experiments.api"
        f".get_experiment({exp_id!r}) with ExperimentRunner",
        DeprecationWarning, stacklevel=3,
    )
    return ExperimentRunner(parallel=parallel).run_one(
        get_experiment(exp_id), "fast" if fast else "full",
        duration=duration,
    )


def all_experiments() -> List[ExperimentSpec]:
    return [get_experiment(exp_id) for exp_id in experiment_ids()]


# ---------------------------------------------------------------------------
# Runner


@dataclass
class _Plan:
    """One experiment materialized for a profile."""

    spec: ExperimentSpec
    result: ExperimentResult
    #: curve index -> list of evaluation tasks, in x order.
    tasks: List[List[Tuple]] = field(default_factory=list)


class ExperimentRunner:
    """Evaluate registered experiments serially or figure-wide parallel.

    Parallel mode flattens the points of every selected curve of every
    selected experiment into one task list evaluated by a single
    process pool — long figures and short figures share the same queue,
    so cores never idle while one slow series finishes.  Saturation
    truncation happens post-hoc per curve, making the output
    byte-identical to the serial path (which stops evaluating a curve
    at its first saturated point).
    """

    def __init__(self, parallel: bool = False,
                 max_workers: Optional[int] = None,
                 seed: Optional[int] = None):
        """``seed`` overrides every spec's base seed (each sweep point
        still gets its own :func:`point_seed` derived from it), so one
        CLI flag reruns any experiment — crash schedules included — on
        a different deterministic trajectory."""
        if max_workers is not None and max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.parallel = parallel
        self.max_workers = max_workers
        self.seed = seed

    # -- public API --------------------------------------------------------
    def run_one(self, spec: Union[str, ExperimentSpec],
                profile: str = "full",
                duration: Optional[float] = None) -> ExperimentResult:
        spec = self._resolve(spec)
        return self.run([spec], profile=profile, duration=duration)[spec.id]

    def run(self, specs: Iterable[Union[str, ExperimentSpec]],
            profile: str = "full",
            duration: Optional[float] = None
            ) -> Dict[str, ExperimentResult]:
        """Run experiments; returns ``{id: ExperimentResult}`` in input
        order.  ``duration`` overrides the profile's per-point duration
        (legacy ``run(duration=...)`` compatibility)."""
        plans = [self._plan(self._resolve(s), profile, duration)
                 for s in specs]
        tasks = [task for plan in plans
                 for curve_tasks in plan.tasks
                 for task in curve_tasks]
        evaluated: Optional[List[Results]] = None
        if self.parallel and len(tasks) > 1:
            evaluated = evaluate_points_parallel(tasks, self.max_workers,
                                                 stacklevel=4)
        if evaluated is not None:
            precomputed = dict(zip(map(id, tasks), evaluated))
            evaluate = lambda task: precomputed[id(task)]  # noqa: E731
        else:
            evaluate = _evaluate_point
        for plan in plans:
            self._collect(plan, evaluate)
        return {plan.spec.id: plan.result for plan in plans}

    # -- internals ---------------------------------------------------------
    @staticmethod
    def _resolve(spec: Union[str, ExperimentSpec]) -> ExperimentSpec:
        if isinstance(spec, ExperimentSpec):
            return spec
        return get_experiment(spec)

    def _plan(self, spec: ExperimentSpec, profile_name: str,
              duration: Optional[float]) -> _Plan:
        prof = spec.profile(profile_name)
        run_duration = duration if duration is not None else prof.duration
        base_seed = self.seed if self.seed is not None else spec.seed
        result = ExperimentResult(
            experiment_id=spec.id,
            title=spec.title,
            x_label=spec.x_label,
            y_label=spec.y_label,
            notes=list(spec.notes),
        )
        plan = _Plan(spec=spec, result=result)
        for curve in spec.curves_for(profile_name):
            result.series.append(Series(label=curve.label))
            plan.tasks.append([
                (x, *curve.build(x), prof.warmup, run_duration,
                 point_seed(base_seed, i))
                for i, x in enumerate(prof.xs)
            ])
        return plan

    def _collect(self, plan: _Plan,
                 evaluate: Callable[[Tuple], Results]) -> None:
        """Fill ``plan.result`` from per-task results.

        In the serial path ``evaluate`` runs the simulation lazily and
        a truncating curve stops at its first saturated point, exactly
        like ``sweep()`` always did; in the parallel path every point
        was already evaluated and results beyond the truncation point
        are simply discarded (post-hoc truncation), so both paths
        produce identical series.
        """
        truncate = plan.spec.truncate_on_saturation
        for series, curve_tasks in zip(plan.result.series, plan.tasks):
            for task in curve_tasks:
                results = evaluate(task)
                if truncate:
                    if _append_point(series, task[0], results):
                        break
                else:
                    series.points.append(SeriesPoint(x=task[0],
                                                     results=results))
