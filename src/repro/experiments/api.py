"""Declarative experiment API: specs, a registry and a figure-wide runner.

The paper's contribution is a *family* of comparable experiments run
under one simulator (Figs. 4.1–4.8, Table 4.2, the ablations).  This
module makes that family first-class:

* :class:`ExperimentSpec` — a declarative description of one figure or
  table: identity, axes, the list of :class:`CurveSpec` factories that
  produce ``(config, workload)`` pairs, ``fast``/``full``
  :class:`SweepProfile`\\ s, expected-shape notes and output formatting.
* :func:`experiment` — a decorator registering a spec factory under a
  stable id (``@experiment("fig4_1")``).  The CLI, ``report_all``,
  exports and the benchmarks all resolve experiments through this
  registry; nothing imports figure modules by name.
* :class:`ExperimentRunner` — evaluates one or many experiments.  In
  parallel mode it schedules *all points of all curves of all selected
  experiments* through a single work queue, so ``--all --parallel``
  saturates every core across figure boundaries instead of
  parallelizing one series at a time.  Given a
  :class:`~repro.experiments.store.ResultStore` it becomes incremental:
  points are fingerprinted, served from the content-addressed cache
  when their inputs are unchanged, streamed into a per-run checkpoint
  journal (:mod:`~repro.experiments.journal`) as they complete, and
  resumable after interruption (``resume=True``).

Determinism: every point gets the same :func:`~repro.experiments.runner.point_seed`
as the historical serial :func:`~repro.experiments.runner.sweep` path,
and saturation truncation is applied post-hoc per curve, so serial and
parallel runs produce byte-identical :class:`ExperimentResult`\\ s.
"""

from __future__ import annotations

import importlib
import os
import pickle
import pkgutil
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.metrics import Results
from repro.experiments.runner import (
    ExperimentResult,
    Series,
    SeriesPoint,
    _append_point,
    _evaluate_point,
    evaluate_points_parallel,
    point_seed,
)

__all__ = [
    "CurveSpec",
    "ExperimentRunner",
    "ExperimentSpec",
    "RunStats",
    "SweepProfile",
    "all_experiments",
    "experiment",
    "experiment_ids",
    "get_experiment",
    "legacy_run",
    "load_builtin_specs",
    "register",
    "unregister",
]

#: Profile names every spec must provide.
PROFILES = ("fast", "full")


@dataclass(frozen=True)
class SweepProfile:
    """One resolution of a sweep: the x values and run lengths."""

    xs: Tuple[float, ...]
    warmup: float = 3.0
    duration: float = 8.0


@dataclass(frozen=True)
class CurveSpec:
    """One labelled curve: ``build(x) -> (config, workload)``.

    ``build`` is a plain data-producing callable — it runs in the
    driving process for every point; only the resulting
    ``(config, workload)`` pair (picklable data) is shipped to worker
    processes.
    """

    label: str
    build: Callable[[float], Tuple]


#: Curves may depend on the profile (e.g. the trace experiments use a
#: shorter synthetic trace under ``fast``), so a spec can hold either a
#: static list or a factory taking the profile name.
CurveSource = Union[Sequence[CurveSpec], Callable[[str], Sequence[CurveSpec]]]


@dataclass
class ExperimentSpec:
    """Declarative description of one figure/table experiment."""

    id: str
    title: str
    x_label: str
    y_label: str
    curves: CurveSource
    profiles: Mapping[str, SweepProfile]
    notes: Tuple[str, ...] = ()
    #: Table-cell metric (default: mean response time in ms).
    metric: Optional[Callable[[Results], float]] = None
    metric_fmt: str = "{:8.2f}"
    #: Full custom renderer; overrides ``metric``/``metric_fmt``.
    renderer: Optional[Callable[[ExperimentResult], str]] = None
    #: End each curve at its first saturated point (the paper stops
    #: plotting there).  Hit-ratio tables keep every cell instead.
    truncate_on_saturation: bool = True
    seed: int = 1

    def __post_init__(self) -> None:
        missing = [name for name in PROFILES if name not in self.profiles]
        if missing:
            raise ValueError(
                f"experiment {self.id!r} lacks sweep profile(s): {missing}"
            )

    def profile(self, name: str) -> SweepProfile:
        try:
            return self.profiles[name]
        except KeyError:
            raise KeyError(
                f"experiment {self.id!r} has no profile {name!r} "
                f"(available: {sorted(self.profiles)})"
            ) from None

    def curves_for(self, profile_name: str) -> List[CurveSpec]:
        source = self.curves
        if callable(source):
            source = source(profile_name)
        return list(source)

    def render(self, result: ExperimentResult) -> str:
        """Format a result the way this experiment is reported."""
        if self.renderer is not None:
            return self.renderer(result)
        return result.to_table(metric=self.metric, fmt=self.metric_fmt)


# ---------------------------------------------------------------------------
# Registry


#: Registration order is preserved; ids are unique.
_FACTORIES: Dict[str, Callable[[], ExperimentSpec]] = {}
_SPECS: Dict[str, ExperimentSpec] = {}
#: "unloaded" -> "loading" (re-entrancy guard) -> "loaded"; a failed
#: import resets to "unloaded" so the next call retries instead of
#: serving a half-populated registry.
_BUILTINS_STATE = "unloaded"


def register(exp_id: str, factory: Callable[[], ExperimentSpec]) -> None:
    """Register ``factory`` (returning an :class:`ExperimentSpec`) as
    ``exp_id``.  Usually used through the :func:`experiment` decorator."""
    if exp_id in _FACTORIES:
        raise ValueError(f"experiment id {exp_id!r} is already registered")
    _FACTORIES[exp_id] = factory


def unregister(exp_id: str) -> None:
    """Remove a registered experiment (tests and interactive use)."""
    _FACTORIES.pop(exp_id, None)
    _SPECS.pop(exp_id, None)


def experiment(exp_id: str):
    """Decorator: register the decorated zero-argument spec factory.

    ::

        @experiment("fig4_1")
        def spec() -> ExperimentSpec:
            return ExperimentSpec(id="fig4_1", ...)
    """

    def decorate(factory: Callable[[], ExperimentSpec]):
        register(exp_id, factory)
        return factory

    return decorate


def load_builtin_specs() -> None:
    """Import every module of :mod:`repro.experiments` once, so their
    ``@experiment`` registrations run.

    Discovery goes through :mod:`pkgutil`, so no experiment module is
    ever named outside this package — adding a figure module is enough
    to make it appear in the CLI, ``report_all`` and the exports.
    """
    global _BUILTINS_STATE
    if _BUILTINS_STATE != "unloaded":
        return
    _BUILTINS_STATE = "loading"
    import repro.experiments as package

    try:
        for info in pkgutil.iter_modules(package.__path__):
            if info.name.startswith("_"):
                continue
            importlib.import_module(f"{package.__name__}.{info.name}")
    except BaseException:
        _BUILTINS_STATE = "unloaded"
        raise
    _BUILTINS_STATE = "loaded"


def get_experiment(exp_id: str) -> ExperimentSpec:
    """Resolve an id to its (cached) :class:`ExperimentSpec`."""
    load_builtin_specs()
    spec = _SPECS.get(exp_id)
    if spec is not None:
        return spec
    factory = _FACTORIES.get(exp_id)
    if factory is None:
        raise KeyError(
            f"unknown experiment {exp_id!r} "
            f"(registered: {', '.join(experiment_ids())})"
        )
    spec = factory()
    if spec.id != exp_id:
        raise ValueError(
            f"spec factory registered as {exp_id!r} produced a spec "
            f"with id {spec.id!r}"
        )
    _SPECS[exp_id] = spec
    return spec


def experiment_ids() -> List[str]:
    """All registered ids, in registration order."""
    load_builtin_specs()
    return list(_FACTORIES)


def legacy_run(exp_id: str, fast: bool = False,
               duration: Optional[float] = None,
               parallel: bool = False) -> ExperimentResult:
    """Engine behind the deprecated module-level ``run()`` wrappers.

    Emits the DeprecationWarning at the wrapper's call site
    (``stacklevel=3``) and forwards to the registry + runner.
    """
    warnings.warn(
        f"module-level run() is deprecated; use repro.experiments.api"
        f".get_experiment({exp_id!r}) with ExperimentRunner",
        DeprecationWarning, stacklevel=3,
    )
    return ExperimentRunner(parallel=parallel).run_one(
        get_experiment(exp_id), "fast" if fast else "full",
        duration=duration,
    )


def all_experiments() -> List[ExperimentSpec]:
    return [get_experiment(exp_id) for exp_id in experiment_ids()]


# ---------------------------------------------------------------------------
# Runner


@dataclass
class _Plan:
    """One experiment materialized for a profile."""

    spec: ExperimentSpec
    result: ExperimentResult
    #: curve index -> list of evaluation tasks, in x order.
    tasks: List[List[Tuple]] = field(default_factory=list)


@dataclass
class RunStats:
    """Cache accounting of one :meth:`ExperimentRunner.run`.

    ``hits`` came from the content-addressed store, ``resumed`` from the
    run's own checkpoint journal, ``misses`` were computed (and written
    back), ``uncacheable`` points carried inputs that cannot be
    fingerprinted and are always recomputed.  A warm re-run of an
    unchanged sweep therefore shows ``hits == total, misses == 0``.
    """

    total: int = 0
    hits: int = 0
    misses: int = 0
    resumed: int = 0
    #: Points sharing a fingerprint with another point of the same run:
    #: evaluated once, filled from the sibling (not a store hit).
    deduped: int = 0
    uncacheable: int = 0
    elapsed_s: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def to_dict(self) -> Dict:
        return {
            "total": self.total, "hits": self.hits,
            "misses": self.misses, "resumed": self.resumed,
            "deduped": self.deduped,
            "uncacheable": self.uncacheable,
            "hit_rate": self.hit_rate,
            "elapsed_s": self.elapsed_s,
        }


@dataclass
class _PointTask:
    """One sweep point with provenance, fingerprint and lifecycle."""

    task: Tuple
    plan: _Plan
    curve_index: int
    point_index: int
    fingerprint: Optional[str] = None
    results: Optional[Results] = None
    #: "computed" | "cache" | "resume" (dedup siblings stay "computed").
    source: str = "computed"
    #: Other points of this run with the same fingerprint: evaluated
    #: once, filled together (identical inputs give identical results).
    dups: List["_PointTask"] = field(default_factory=list)


class ExperimentRunner:
    """Evaluate registered experiments serially or figure-wide parallel.

    Parallel mode flattens the points of every selected curve of every
    selected experiment into one task list evaluated by a single
    process pool — long figures and short figures share the same queue,
    so cores never idle while one slow series finishes.  Saturation
    truncation happens post-hoc per curve, making the output
    byte-identical to the serial path (which stops evaluating a curve
    at its first saturated point).

    With a ``store`` (and/or a ``journal``) the runner becomes
    *incremental and resumable*: every point is fingerprinted
    (:func:`repro.core.fingerprint.point_fingerprint`), looked up in
    the content-addressed store before being scheduled, streamed into
    both the store and a per-run checkpoint journal as it completes,
    and — under ``resume=True`` — reloaded from an interrupted run's
    journal instead of recomputed.  Cached results are byte-identical
    to recomputation (the golden-checksum tests pin this), so caching
    can never change a figure, only its cost.  Cache-enabled runs
    evaluate all planned points eagerly (like ``parallel``), relying on
    the same post-hoc truncation for identical output.
    """

    def __init__(self, parallel: bool = False,
                 max_workers: Optional[int] = None,
                 seed: Optional[int] = None,
                 store: Optional[object] = None,
                 journal: Union[bool, str] = False,
                 resume: bool = False,
                 configure: Optional[Callable] = None,
                 observe: Optional[Callable] = None):
        """``seed`` overrides every spec's base seed (each sweep point
        still gets its own :func:`point_seed` derived from it), so one
        CLI flag reruns any experiment — crash schedules included — on
        a different deterministic trajectory.

        ``store`` is a :class:`repro.experiments.store.ResultStore` (or
        None for no caching).  ``journal`` is ``True`` for an
        auto-named checkpoint journal under the cache's ``runs/``
        directory, or an explicit path; ``resume=True`` implies a
        journal and reloads completed points from a matching one.

        ``configure`` and ``observe`` are the side-channel hooks used
        by traced runs (:mod:`repro.trace.run`): ``configure(config)``
        returns the config actually built for each point,
        ``observe(task, system, results)`` sees the live system after
        its point evaluated.  Hooks keep the plan, seeds and truncation
        identical to a plain run but require the direct serial path —
        they are incompatible with ``parallel``, ``store``, ``journal``
        and ``resume`` (systems do not cross process or cache
        boundaries).
        """
        if max_workers is not None and max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if (configure is not None or observe is not None) and (
                parallel or store is not None or journal or resume):
            raise ValueError(
                "configure/observe hooks require the direct serial "
                "path (no parallel, store, journal or resume)"
            )
        self.parallel = parallel
        self.max_workers = max_workers
        self.seed = seed
        self.store = store
        self.journal = journal
        self.resume = resume
        self.configure = configure
        self.observe = observe
        #: Cache accounting of the most recent :meth:`run` (None until
        #: a cache- or journal-enabled run happened).
        self.last_stats: Optional[RunStats] = None
        #: Journal file written by the most recent :meth:`run`.
        self.last_journal_path: Optional[str] = None

    # -- public API --------------------------------------------------------
    def run_one(self, spec: Union[str, ExperimentSpec],
                profile: str = "full",
                duration: Optional[float] = None) -> ExperimentResult:
        spec = self._resolve(spec)
        return self.run([spec], profile=profile, duration=duration)[spec.id]

    def run(self, specs: Iterable[Union[str, ExperimentSpec]],
            profile: str = "full",
            duration: Optional[float] = None
            ) -> Dict[str, ExperimentResult]:
        """Run experiments; returns ``{id: ExperimentResult}`` in input
        order.  ``duration`` overrides the profile's per-point duration
        (legacy ``run(duration=...)`` compatibility)."""
        plans = [self._plan(self._resolve(s), profile, duration)
                 for s in specs]
        if self.store is None and not self.journal and not self.resume:
            return self._run_direct(plans)
        return self._run_cached(plans, profile, duration)

    def _run_direct(self, plans: List[_Plan]) -> Dict[str, ExperimentResult]:
        """The historical evaluation path: no fingerprints, no files."""
        tasks = [task for plan in plans
                 for curve_tasks in plan.tasks
                 for task in curve_tasks]
        evaluated: Optional[List[Results]] = None
        if self.parallel and len(tasks) > 1:
            evaluated = evaluate_points_parallel(tasks, self.max_workers,
                                                 stacklevel=4)
        if evaluated is not None:
            precomputed = dict(zip(map(id, tasks), evaluated))
            evaluate = lambda task: precomputed[id(task)]  # noqa: E731
        elif self.configure is not None or self.observe is not None:
            evaluate = self._evaluate_hooked
        else:
            evaluate = _evaluate_point
        for plan in plans:
            self._collect(plan, evaluate)
        return {plan.spec.id: plan.result for plan in plans}

    def _evaluate_hooked(self, task: Tuple) -> Results:
        """Serial point evaluation with the configure/observe hooks.

        Mirrors :func:`_evaluate_point` exactly apart from the hook
        calls; keeping the system in-process is what lets ``observe``
        read its tracer after the run."""
        from repro.core.model import TransactionSystem

        x, config, workload, warmup, duration, seed = task
        if self.configure is not None:
            config = self.configure(config)
        builder = getattr(config, "build_system", None)
        if builder is not None:
            system = builder(workload, seed=seed)
        else:
            system = TransactionSystem(config, workload, seed=seed)
        results = system.run(warmup=warmup, duration=duration)
        if self.observe is not None:
            self.observe(task, system, results)
        return results

    # -- cached / journaled evaluation ------------------------------------
    def _run_cached(self, plans: List[_Plan], profile: str,
                    duration: Optional[float]
                    ) -> Dict[str, ExperimentResult]:
        from repro.core.fingerprint import (
            FingerprintError,
            code_version_salt,
            fingerprint,
            point_fingerprint,
        )
        from repro.experiments.export import results_from_dict

        t_start = time.perf_counter()
        entries: List[_PointTask] = []
        for plan in plans:
            for ci, curve_tasks in enumerate(plan.tasks):
                for pi, task in enumerate(curve_tasks):
                    entries.append(_PointTask(task, plan, ci, pi))
        stats = RunStats(total=len(entries))

        warned_uncacheable = False
        for entry in entries:
            _x, config, workload, warmup, dur, seed = entry.task
            try:
                entry.fingerprint = point_fingerprint(
                    config, workload, warmup, dur, seed)
            except FingerprintError as exc:
                stats.uncacheable += 1
                if not warned_uncacheable:
                    warnings.warn(
                        f"sweep point is not cacheable and will always "
                        f"be recomputed: {exc}", RuntimeWarning,
                        stacklevel=4,
                    )
                    warned_uncacheable = True

        salt = code_version_salt()
        run_key = fingerprint({
            "journal_schema": 1,
            "ids": [plan.spec.id for plan in plans],
            "profile": profile,
            "seed": self.seed,
            "duration": duration,
            "salt": salt,
        })
        journal = self._open_journal(run_key)

        # Resume overlay: completed points of an interrupted run with
        # the SAME run key (same ids/profile/seed/duration/code).
        overlay: Dict[str, Results] = {}
        append = False
        if journal is not None and self.resume:
            view = journal.load_for_resume(run_key)
            if view is not None:
                append = True
                for record in view.points:
                    fp = record.get("fingerprint")
                    if not fp:
                        continue
                    try:
                        overlay[fp] = results_from_dict(record["results"])
                    except (KeyError, TypeError):
                        continue

        for entry in entries:
            fp = entry.fingerprint
            if fp is None:
                continue
            if fp in overlay:
                entry.results = overlay[fp]
                entry.source = "resume"
                stats.resumed += 1
            elif self.store is not None:
                cached = self.store.get(fp)
                if cached is not None:
                    entry.results = cached
                    entry.source = "cache"
                    stats.hits += 1

        if journal is not None:
            journal.start({
                "run_key": run_key,
                "ids": [plan.spec.id for plan in plans],
                "profile": profile,
                "seed": self.seed,
                "duration": duration,
                "salt": salt,
                "parallel": self.parallel,
                "total_points": len(entries),
                "per_experiment": {
                    plan.spec.id: sum(len(t) for t in plan.tasks)
                    for plan in plans
                },
            }, append=append)
            # A fresh journal records store hits up front, so it is a
            # complete checkpoint on its own; on resume-append the
            # resumed points are already in the file.
            for entry in entries:
                if entry.results is not None and entry.source == "cache":
                    journal.record_point(self._journal_record(entry))

        # Points still owed a simulation, evaluated once per distinct
        # fingerprint (identical inputs are deterministic duplicates).
        pending = [e for e in entries if e.results is None]
        primaries: Dict[str, _PointTask] = {}
        unique: List[_PointTask] = []
        for entry in pending:
            fp = entry.fingerprint
            if fp is not None and fp in primaries:
                primaries[fp].dups.append(entry)
            else:
                if fp is not None:
                    primaries[fp] = entry
                unique.append(entry)

        def complete(entry: _PointTask, results: Results) -> None:
            entry.results = results
            stats.misses += 1
            if self.store is not None and entry.fingerprint is not None:
                self.store.put(entry.fingerprint, results)
            if journal is not None:
                journal.record_point(self._journal_record(entry))
            for dup in entry.dups:
                dup.results = results
                stats.deduped += 1
                if journal is not None:
                    journal.record_point(self._journal_record(dup))

        try:
            self._evaluate_pending(unique, complete)
        finally:
            stats.elapsed_s = time.perf_counter() - t_start
            self.last_stats = stats
            if journal is not None:
                journal.finish(stats.to_dict())

        by_task = {id(entry.task): entry.results for entry in entries}
        evaluate = lambda task: by_task[id(task)]  # noqa: E731
        for plan in plans:
            self._collect(plan, evaluate)
        return {plan.spec.id: plan.result for plan in plans}

    def _open_journal(self, run_key: str):
        from repro.experiments.journal import RunJournal

        if not self.journal and not self.resume:
            return None
        if isinstance(self.journal, str):
            path = self.journal
        else:
            if self.store is not None:
                runs_dir = self.store.runs_dir
            else:
                from pathlib import Path

                from repro.experiments.store import default_cache_dir

                runs_dir = Path(default_cache_dir()) / "runs"
            path = str(runs_dir / f"{run_key[:16]}.jsonl")
        self.last_journal_path = path
        return RunJournal(path)

    def _journal_record(self, entry: _PointTask) -> Dict:
        from repro.experiments.export import results_to_dict

        results = entry.results
        return {
            "t": time.time(),
            "experiment": entry.plan.spec.id,
            "series": entry.plan.result.series[entry.curve_index].label,
            "x": entry.task[0],
            "curve": entry.curve_index,
            "index": entry.point_index,
            "fingerprint": entry.fingerprint,
            "source": entry.source,
            "response_ms": results.response_time_ms,
            "throughput": results.throughput,
            "saturated": results.saturated,
            "results": results_to_dict(results),
        }

    def _evaluate_pending(self, pending: List[_PointTask],
                          complete: Callable[[_PointTask, Results], None]
                          ) -> None:
        """Evaluate entries, calling ``complete`` as each one finishes
        (streaming: the journal and store see points the moment they
        exist, which is what makes interruption cheap and ``repro
        watch`` live).  Parallel evaluation degrades to serial exactly
        like :func:`evaluate_points_parallel`."""
        remaining = pending
        if self.parallel and len(pending) > 1:
            workers = self.max_workers or min(len(pending),
                                              os.cpu_count() or 1)
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {pool.submit(_evaluate_point, e.task): e
                               for e in pending}
                    for future in as_completed(futures):
                        complete(futures[future], future.result())
            except (OSError, pickle.PicklingError, AttributeError,
                    TypeError, BrokenProcessPool) as exc:
                warnings.warn(
                    f"parallel cached run fell back to serial "
                    f"evaluation: {exc!r}", RuntimeWarning, stacklevel=5,
                )
            remaining = [e for e in pending if e.results is None]
        for entry in remaining:
            complete(entry, _evaluate_point(entry.task))

    # -- internals ---------------------------------------------------------
    @staticmethod
    def _resolve(spec: Union[str, ExperimentSpec]) -> ExperimentSpec:
        if isinstance(spec, ExperimentSpec):
            return spec
        return get_experiment(spec)

    def _plan(self, spec: ExperimentSpec, profile_name: str,
              duration: Optional[float]) -> _Plan:
        prof = spec.profile(profile_name)
        run_duration = duration if duration is not None else prof.duration
        base_seed = self.seed if self.seed is not None else spec.seed
        result = ExperimentResult(
            experiment_id=spec.id,
            title=spec.title,
            x_label=spec.x_label,
            y_label=spec.y_label,
            notes=list(spec.notes),
        )
        plan = _Plan(spec=spec, result=result)
        for curve in spec.curves_for(profile_name):
            result.series.append(Series(label=curve.label))
            plan.tasks.append([
                (x, *curve.build(x), prof.warmup, run_duration,
                 point_seed(base_seed, i))
                for i, x in enumerate(prof.xs)
            ])
        return plan

    def _collect(self, plan: _Plan,
                 evaluate: Callable[[Tuple], Results]) -> None:
        """Fill ``plan.result`` from per-task results.

        In the serial path ``evaluate`` runs the simulation lazily and
        a truncating curve stops at its first saturated point, exactly
        like ``sweep()`` always did; in the parallel path every point
        was already evaluated and results beyond the truncation point
        are simply discarded (post-hoc truncation), so both paths
        produce identical series.
        """
        truncate = plan.spec.truncate_on_saturation
        for series, curve_tasks in zip(plan.result.series, plan.tasks):
            for task in curve_tasks:
                results = evaluate(task)
                if truncate:
                    if _append_point(series, task[0], results):
                        break
                else:
                    series.points.append(SeriesPoint(x=task[0],
                                                     results=results))
