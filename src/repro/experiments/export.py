"""Export experiment results to CSV and JSON (and read them back).

Downstream analysis (spreadsheets, notebooks, gnuplot) wants flat data,
not ASCII tables:

* :func:`results_to_dict` / :func:`results_from_dict` — one run's
  :class:`Results` as plain dicts, and back.
* :func:`experiment_to_rows` / :func:`write_csv` — long-format rows
  (experiment, series, x, metrics...) for a whole sweep.
* :func:`write_json` / :func:`read_json` — the full experiment,
  metadata included; ``read_json`` round-trips a written file back
  into an equal :class:`ExperimentResult`.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List

from repro.core.metrics import Results
from repro.experiments.runner import ExperimentResult, Series, SeriesPoint

__all__ = [
    "experiment_from_dict",
    "experiment_to_dict",
    "experiment_to_rows",
    "read_json",
    "results_from_dict",
    "results_to_dict",
    "write_csv",
    "write_json",
]


def results_to_dict(results: Results) -> Dict:
    """Flatten one run's Results into JSON-serializable dicts.

    The ``recovery`` block is present only for recovery-enabled runs,
    so exports (and the pinned fig4_1 golden checksum) of
    recovery-disabled runs are unchanged by the subsystem's existence.
    """
    payload = {
        "simulated_time": results.simulated_time,
        "committed": results.committed,
        "aborted": results.aborted,
        "page_accesses": results.page_accesses,
        "throughput": results.throughput,
        "response_time_mean": results.response_time_mean,
        "response_time_p95": results.response_time_p95,
        "response_time_max": results.response_time_max,
        "response_by_type": dict(results.response_by_type),
        "composition": dict(results.composition),
        "hit_ratios": dict(results.hit_ratios),
        "mm_hit_by_tag": dict(results.mm_hit_by_tag),
        "second_level_hit_by_tag": dict(results.second_level_hit_by_tag),
        "io_per_tx": dict(results.io_per_tx),
        "lock_stats": dict(results.lock_stats),
        "cpu_utilization": results.cpu_utilization,
        "device_utilization": {
            name: dict(values)
            for name, values in results.device_utilization.items()
        },
        "saturated": results.saturated,
        "input_queue_peak": results.input_queue_peak,
    }
    if results.recovery is not None:
        payload["recovery"] = dict(results.recovery)
    if results.cluster is not None:
        payload["cluster"] = dict(results.cluster)
    if results.degraded is not None:
        payload["degraded"] = dict(results.degraded)
    if results.latency is not None:
        payload["latency"] = dict(results.latency)
    if results.timeseries is not None:
        payload["timeseries"] = [dict(sample)
                                 for sample in results.timeseries]
    return payload


def results_from_dict(payload: Dict) -> Results:
    """Inverse of :func:`results_to_dict`."""
    return Results(**payload)


#: Flat columns exported per sweep point.  ``availability`` and
#: ``restart_time_s`` report 1.0 / 0.0 for recovery-disabled runs; the
#: degraded-mode columns report 0.0 for media-disabled runs; the
#: cluster columns report single-node identities (nodes=1, fractions
#: and durations 0) for non-cluster runs; the distribution columns
#: (p50/p99/SLO) fall back to the Results summary statistics when the
#: run recorded no latency block.
CSV_FIELDS = [
    "experiment", "series", "x", "response_time_ms", "response_p95_ms",
    "throughput_tps", "committed", "aborted", "cpu_utilization",
    "mm_hit", "nvem_cache_hit", "disk_cache_hit", "saturated",
    "availability", "restart_time_s",
    "degraded_tps", "media_mttr_s", "io_retries",
    "nodes", "dist_fraction", "commit_phase_ms", "in_doubt_time",
    "dollars_per_tps",
    "response_p50_ms", "response_p99_ms", "slo_attainment",
]


def experiment_to_rows(result: ExperimentResult) -> List[Dict]:
    """Long-format rows: one per (series, x) sweep point."""
    rows = []
    for series in result.series:
        for point in series.points:
            r = point.results
            rows.append({
                "experiment": result.experiment_id,
                "series": series.label,
                "x": point.x,
                "response_time_ms": r.response_time_ms,
                "response_p95_ms": r.response_time_p95 * 1000.0,
                "throughput_tps": r.throughput,
                "committed": r.committed,
                "aborted": r.aborted,
                "cpu_utilization": r.cpu_utilization,
                "mm_hit": r.hit_ratio("main_memory")
                + r.hit_ratio("memory_resident"),
                "nvem_cache_hit": r.hit_ratio("nvem_cache"),
                "disk_cache_hit": r.hit_ratio("disk_cache"),
                "saturated": r.saturated,
                "availability": r.availability,
                "restart_time_s": r.restart_time_mean,
                "degraded_tps": r.degraded_tps,
                "media_mttr_s": r.media_mttr_mean,
                "io_retries": r.io_retries,
                "nodes": r.nodes,
                "dist_fraction": r.dist_fraction,
                "commit_phase_ms": r.commit_phase_ms,
                "in_doubt_time": r.in_doubt_time,
                "dollars_per_tps": r.dollars_per_tps,
                "response_p50_ms": r.response_time_p50 * 1000.0,
                "response_p99_ms": r.response_time_p99 * 1000.0,
                "slo_attainment": r.slo_attainment,
            })
    return rows


def write_csv(result: ExperimentResult, path: str) -> None:
    """Write the sweep as CSV (columns: :data:`CSV_FIELDS`)."""
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=CSV_FIELDS)
        writer.writeheader()
        for row in experiment_to_rows(result):
            writer.writerow(row)


def experiment_to_dict(result: ExperimentResult) -> Dict:
    """The full experiment (metadata + per-point Results) as dicts."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "x_label": result.x_label,
        "y_label": result.y_label,
        "notes": list(result.notes),
        "series": [
            {
                "label": series.label,
                "points": [
                    {"x": point.x,
                     "saturated": point.saturated,
                     "results": results_to_dict(point.results)}
                    for point in series.points
                ],
            }
            for series in result.series
        ],
    }


def experiment_from_dict(payload: Dict) -> ExperimentResult:
    """Inverse of :func:`experiment_to_dict`."""
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        x_label=payload["x_label"],
        y_label=payload["y_label"],
        notes=list(payload.get("notes", [])),
        series=[
            Series(
                label=series["label"],
                points=[
                    SeriesPoint(x=point["x"],
                                results=results_from_dict(point["results"]))
                    for point in series["points"]
                ],
            )
            for series in payload.get("series", [])
        ],
    )


def write_json(result: ExperimentResult, path: str) -> None:
    """Write the full experiment (metadata + per-point Results)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(experiment_to_dict(result), fh, indent=2)


def read_json(path: str) -> ExperimentResult:
    """Load an experiment written by :func:`write_json`."""
    with open(path, encoding="utf-8") as fh:
        return experiment_from_dict(json.load(fh))
