"""Shared setup for the trace-driven experiments (§4.6/4.7).

The original trace is proprietary; :func:`repro.workload.tracegen`
generates a synthetic equivalent matching its published marginals (see
DESIGN.md).  This module caches generated traces and assembles the
storage configurations of Figs. 4.6/4.7:

* main-memory caching only (plain disks);
* volatile / non-volatile disk caches (2000 pages in Fig. 4.6);
* NVEM cache (2000 pages, migration mode ALL — the paper found
  migrating all pages gives the best NVEM hit ratios for this load);
* complete database allocation to SSD;
* complete database allocation to NVEM.

Simulated lengths are scaled down from the paper's full trace replay
(17,500 transactions) to keep each sweep point tractable; the locality
profile — which determines every hit-ratio effect the paper reports —
is unchanged.  The replay rate (25 TPS) keeps the CPU (~30%) and disks
uncongested, as in the paper where response time is I/O-dominated.
"""

from __future__ import annotations

from functools import lru_cache
from repro.core.config import (
    DiskUnitType,
    LogAllocation,
    NVEM,
    NVEMCachingMode,
    SystemConfig,
)
from repro.experiments.defaults import (
    db_disk_unit,
    default_cm,
    default_nvem,
    log_disk_unit,
)
from repro.workload.trace import Trace, TraceWorkload, build_trace_partitions
from repro.workload.tracegen import RealWorkloadProfile, generate_trace

__all__ = [
    "ARRIVAL_RATE",
    "MEAN_TX_SIZE",
    "trace_config",
    "trace_for",
    "trace_workload",
]

ARRIVAL_RATE = 25.0
#: The paper's "artificial transaction" size used for normalization.
MEAN_TX_SIZE = 57.0


@lru_cache(maxsize=4)
def trace_for(fast: bool = False, seed: int = 42) -> Trace:
    """A cached synthetic trace (scaled for experiment wall-time)."""
    if fast:
        profile = RealWorkloadProfile(
            num_transactions=1_500,
            target_accesses=90_000,
            adhoc_count=1,
            adhoc_accesses=5_000,
        )
    else:
        profile = RealWorkloadProfile(
            num_transactions=6_000,
            target_accesses=350_000,
            adhoc_count=2,
        )
    return generate_trace(profile, seed=seed)


def trace_config(trace: Trace, kind: str, mm_size: int,
                 second_level: int = 2000, seed: int = 1) -> SystemConfig:
    """Build the SystemConfig for one Fig. 4.6/4.7 configuration.

    ``kind``: "none", "volatile", "nonvolatile", "nvem", "ssd",
    "nvem-resident".
    """
    nvem_caching = NVEMCachingMode.NONE
    nvem_cache_size = 0
    log = LogAllocation(device="log0")
    if kind == "none":
        units = [db_disk_unit("db0"), log_disk_unit("log0", num_disks=2)]
        allocation = "db0"
    elif kind == "volatile":
        units = [
            db_disk_unit("db0", unit_type=DiskUnitType.VOLATILE_CACHE,
                         cache_size=second_level),
            log_disk_unit("log0", num_disks=2),
        ]
        allocation = "db0"
    elif kind == "nonvolatile":
        units = [
            db_disk_unit("db0", unit_type=DiskUnitType.NONVOLATILE_CACHE,
                         cache_size=second_level),
            log_disk_unit("log0", num_disks=2,
                          unit_type=DiskUnitType.NONVOLATILE_CACHE,
                          cache_size=500, write_buffer_only=True),
        ]
        allocation = "db0"
    elif kind == "nvem":
        units = [db_disk_unit("db0")]
        allocation = "db0"
        nvem_caching = NVEMCachingMode.ALL
        nvem_cache_size = second_level
        log = LogAllocation(device=NVEM)
    elif kind == "ssd":
        units = [db_disk_unit("ssd0", unit_type=DiskUnitType.SSD,
                              num_controllers=8)]
        allocation = "ssd0"
        log = LogAllocation(device="ssd0")
    elif kind == "nvem-resident":
        units = []
        allocation = NVEM
        log = LogAllocation(device=NVEM)
    else:
        raise ValueError(f"unknown trace configuration kind {kind!r}")

    partitions = build_trace_partitions(
        trace,
        allocation=allocation,
        nvem_caching=nvem_caching,
    )
    cm = default_cm(buffer_size=mm_size)
    cm.nvem_cache_size = nvem_cache_size
    config = SystemConfig(
        partitions=partitions,
        disk_units=units,
        nvem=default_nvem(),
        cm=cm,
        log=log,
        seed=seed,
    )
    config.validate()
    return config


def trace_workload(trace: Trace,
                   arrival_rate: float = ARRIVAL_RATE) -> TraceWorkload:
    return TraceWorkload(trace, arrival_rate=arrival_rate, loop=True)
