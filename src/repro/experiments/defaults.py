"""Default parameter settings for the Debit-Credit experiments (Table 4.1).

This module provides the building blocks every experiment reuses:

* :func:`default_cm` — the CM parameters of Table 4.1 (4 CPUs at
  50 MIPS, 2000-frame buffer, 40k/40k/50k instruction costs, 3000
  instructions per I/O, 300 per NVEM access).
* device builders (:func:`db_disk_unit`, :func:`log_disk_unit`, ...)
  with the paper's service times: 1 ms controller, 0.4 ms transfer,
  15 ms database disks, 5 ms log disks (sequential access), 50 µs NVEM.
* storage-allocation builders for the alternatives studied in §4.2–4.5
  (disk-only, write buffers, SSD, NVEM-resident, memory-resident,
  second-level caches).

All builders return fresh objects so experiments can mutate their
copies freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.config import (
    CMConfig,
    DeviceSpec,
    DiskUnitConfig,
    DiskUnitType,
    LogAllocation,
    MEMORY,
    NVEM,
    NVEMCachingMode,
    NVEMConfig,
    PolicySpec,
    SystemConfig,
    UpdateStrategy,
)
from repro.workload.debit_credit import build_debit_credit_partitions

__all__ = [
    "StorageScheme",
    "battery_dram_resident",
    "db_disk_unit",
    "debit_credit_config",
    "default_cm",
    "default_nvem",
    "disk_only",
    "disk_with_nv_cache_write_buffer",
    "flash_resident",
    "log_disk_unit",
    "memory_resident",
    "nvem_resident",
    "nvem_write_buffer",
    "second_level_cache_scheme",
    "ssd_resident",
]

#: Service-time constants of Table 4.1 (seconds).
CONTROLLER_DELAY = 0.001
TRANS_DELAY = 0.0004
DB_DISK_DELAY = 0.015
LOG_DISK_DELAY = 0.005
NVEM_DELAY = 50e-6


def default_cm(update_strategy: UpdateStrategy = UpdateStrategy.NOFORCE,
               buffer_size: int = 2000) -> CMConfig:
    """CM parameters of Table 4.1."""
    return CMConfig(
        mpl=200,
        instr_bot=40_000,
        instr_or=40_000,
        instr_eot=50_000,
        num_cpus=4,
        mips=50.0,
        buffer_size=buffer_size,
        update_strategy=update_strategy,
        logging=True,
        instr_io=3_000,
        instr_nvem=300,
    )


def default_nvem() -> NVEMConfig:
    return NVEMConfig(num_servers=1, delay=NVEM_DELAY)


def db_disk_unit(name: str, num_disks: int = 64, num_controllers: int = 8,
                 unit_type: DiskUnitType = DiskUnitType.REGULAR,
                 cache_size: int = 0,
                 write_buffer_only: bool = False) -> DiskUnitConfig:
    """A database disk unit sized to avoid I/O bottlenecks (§4.2)."""
    return DiskUnitConfig(
        name=name,
        unit_type=unit_type,
        num_controllers=num_controllers,
        controller_delay=CONTROLLER_DELAY,
        trans_delay=TRANS_DELAY,
        num_disks=num_disks,
        disk_delay=DB_DISK_DELAY,
        cache_size=cache_size,
        write_buffer_only=write_buffer_only,
    )


def log_disk_unit(name: str = "log0", num_disks: int = 1,
                  num_controllers: int = 1,
                  unit_type: DiskUnitType = DiskUnitType.REGULAR,
                  cache_size: int = 0,
                  write_buffer_only: bool = False) -> DiskUnitConfig:
    """A log disk unit: 5 ms access (sequential writes shorten seeks)."""
    return DiskUnitConfig(
        name=name,
        unit_type=unit_type,
        num_controllers=num_controllers,
        controller_delay=CONTROLLER_DELAY,
        trans_delay=TRANS_DELAY,
        num_disks=num_disks,
        disk_delay=LOG_DISK_DELAY,
        cache_size=cache_size,
        write_buffer_only=write_buffer_only,
    )


@dataclass
class StorageScheme:
    """A named storage allocation for the Debit-Credit database."""

    name: str
    #: Allocation target for ACCOUNT / HISTORY ("memory", "nvem", unit).
    db_allocation: str
    #: Allocation target for BRANCH_TELLER (kept separate so FORCE runs
    #: can spread the hot partition over multiple disks, §4.4).
    bt_allocation: str
    log: LogAllocation
    disk_units: List[DiskUnitConfig] = field(default_factory=list)
    #: Registry-resolved devices beyond the classic unit table
    #: (flash SSD, battery-backed DRAM, user-registered kinds).
    devices: List[DeviceSpec] = field(default_factory=list)
    nvem_caching: NVEMCachingMode = NVEMCachingMode.NONE
    nvem_cache_size: int = 0
    nvem_write_buffer: bool = False
    nvem_write_buffer_size: int = 0
    #: Main-memory buffer replacement policy (registry spec).
    mm_policy: PolicySpec = field(default_factory=PolicySpec)


def disk_only(log_disks: int = 8) -> StorageScheme:
    """§4.3 alternative 1: everything on plain disks."""
    return StorageScheme(
        name="disk",
        db_allocation="db0",
        bt_allocation="bt0",
        log=LogAllocation(device="log0"),
        disk_units=[
            db_disk_unit("db0"),
            db_disk_unit("bt0", num_disks=24, num_controllers=4),
            log_disk_unit("log0", num_disks=log_disks),
        ],
    )


def disk_with_nv_cache_write_buffer(cache_size: int = 500,
                                    log_disks: int = 8) -> StorageScheme:
    """§4.3 alternative 2: disks with non-volatile caches as write buffers."""
    return StorageScheme(
        name="disk-cache-wb",
        db_allocation="db0",
        bt_allocation="bt0",
        log=LogAllocation(device="log0"),
        disk_units=[
            db_disk_unit("db0", unit_type=DiskUnitType.NONVOLATILE_CACHE,
                         cache_size=cache_size),
            db_disk_unit("bt0", num_disks=24, num_controllers=4,
                         unit_type=DiskUnitType.NONVOLATILE_CACHE,
                         cache_size=cache_size),
            log_disk_unit("log0", num_disks=log_disks,
                          unit_type=DiskUnitType.NONVOLATILE_CACHE,
                          cache_size=cache_size, write_buffer_only=True),
        ],
    )


def nvem_write_buffer(buffer_size: int = 500,
                      log_disks: int = 8) -> StorageScheme:
    """§4.3 alternative 3: write buffer in NVEM, files on plain disks."""
    return StorageScheme(
        name="nvem-wb",
        db_allocation="db0",
        bt_allocation="bt0",
        log=LogAllocation(device="log0", nvem_write_buffer=True),
        disk_units=[
            db_disk_unit("db0"),
            db_disk_unit("bt0", num_disks=24, num_controllers=4),
            log_disk_unit("log0", num_disks=log_disks),
        ],
        nvem_write_buffer=True,
        nvem_write_buffer_size=buffer_size,
    )


def ssd_resident() -> StorageScheme:
    """§4.3 alternative 4: all partitions and the log on solid-state disk."""
    return StorageScheme(
        name="ssd",
        db_allocation="ssd0",
        bt_allocation="ssd0",
        log=LogAllocation(device="ssdlog"),
        disk_units=[
            db_disk_unit("ssd0", unit_type=DiskUnitType.SSD,
                         num_controllers=8),
            log_disk_unit("ssdlog", unit_type=DiskUnitType.SSD,
                          num_controllers=2),
        ],
    )


def flash_resident() -> StorageScheme:
    """Beyond the paper: all partitions and the log on flash SSD.

    Flash page programs are several times slower than reads (default
    0.5 ms vs 0.1 ms), so the write-heavy Debit-Credit load lands
    between the paper's DRAM-SSD and cached-disk alternatives.
    """
    return StorageScheme(
        name="flash",
        db_allocation="flash0",
        bt_allocation="flash0",
        log=LogAllocation(device="flashlog"),
        devices=[
            DeviceSpec(kind="flash_ssd", name="flash0",
                       params={"num_controllers": 8, "num_channels": 16}),
            DeviceSpec(kind="flash_ssd", name="flashlog",
                       params={"num_controllers": 2, "num_channels": 4}),
        ],
    )


def battery_dram_resident() -> StorageScheme:
    """Beyond the paper: battery-backed DRAM behind the disk interface.

    The fastest non-volatile alternative still paying the channel I/O
    path (contrast with NVEM, which is CPU-addressed).
    """
    return StorageScheme(
        name="battery-dram",
        db_allocation="bbdram0",
        bt_allocation="bbdram0",
        log=LogAllocation(device="bbdramlog"),
        devices=[
            DeviceSpec(kind="battery_dram", name="bbdram0",
                       params={"num_controllers": 8}),
            DeviceSpec(kind="battery_dram", name="bbdramlog",
                       params={"num_controllers": 2}),
        ],
    )


def nvem_resident() -> StorageScheme:
    """§4.3 alternative 5: all partitions and the log in NVEM."""
    return StorageScheme(
        name="nvem",
        db_allocation=NVEM,
        bt_allocation=NVEM,
        log=LogAllocation(device=NVEM),
        disk_units=[],
    )


def memory_resident(log_disks: int = 8) -> StorageScheme:
    """§4.3 alternative 6: main-memory database, log on disk."""
    return StorageScheme(
        name="memory",
        db_allocation=MEMORY,
        bt_allocation=MEMORY,
        log=LogAllocation(device="log0"),
        disk_units=[log_disk_unit("log0", num_disks=log_disks)],
    )


def second_level_cache_scheme(kind: str, cache_size: int,
                              log_disks: int = 8) -> StorageScheme:
    """Second-level caching configurations of §4.5 (Fig. 4.4/4.5).

    ``kind`` is one of:

    * ``"none"`` — main-memory caching only (plain disks);
    * ``"volatile"`` — volatile disk caches of ``cache_size`` pages;
    * ``"nonvolatile"`` — non-volatile disk caches (also absorb writes);
    * ``"write-buffer"`` — non-volatile caches used purely as write
      buffers (no read caching);
    * ``"nvem"`` — a shared NVEM database cache of ``cache_size`` pages
      (migration mode ALL), log in NVEM as in the paper's runs.

    Non-volatile disk-cache and NVEM configurations also place the log
    behind the same kind of non-volatile memory (§4.5: "these storage
    types were also used for logging").
    """
    if kind == "none":
        return disk_only(log_disks=log_disks)
    if kind == "volatile":
        return StorageScheme(
            name=f"vol-cache-{cache_size}",
            db_allocation="db0",
            bt_allocation="db0",
            log=LogAllocation(device="log0"),
            disk_units=[
                db_disk_unit("db0", unit_type=DiskUnitType.VOLATILE_CACHE,
                             cache_size=cache_size),
                log_disk_unit("log0", num_disks=log_disks),
            ],
        )
    if kind == "nonvolatile":
        return StorageScheme(
            name=f"nv-cache-{cache_size}",
            db_allocation="db0",
            bt_allocation="db0",
            log=LogAllocation(device="log0"),
            disk_units=[
                db_disk_unit("db0",
                             unit_type=DiskUnitType.NONVOLATILE_CACHE,
                             cache_size=cache_size),
                log_disk_unit("log0", num_disks=log_disks,
                              unit_type=DiskUnitType.NONVOLATILE_CACHE,
                              cache_size=min(cache_size, 500),
                              write_buffer_only=True),
            ],
        )
    if kind == "write-buffer":
        return StorageScheme(
            name=f"wb-cache-{cache_size}",
            db_allocation="db0",
            bt_allocation="db0",
            log=LogAllocation(device="log0"),
            disk_units=[
                db_disk_unit("db0",
                             unit_type=DiskUnitType.NONVOLATILE_CACHE,
                             cache_size=cache_size,
                             write_buffer_only=True),
                log_disk_unit("log0", num_disks=log_disks,
                              unit_type=DiskUnitType.NONVOLATILE_CACHE,
                              cache_size=min(cache_size, 500),
                              write_buffer_only=True),
            ],
        )
    if kind == "nvem":
        return StorageScheme(
            name=f"nvem-cache-{cache_size}",
            db_allocation="db0",
            bt_allocation="db0",
            log=LogAllocation(device=NVEM),
            disk_units=[db_disk_unit("db0")],
            nvem_caching=NVEMCachingMode.ALL,
            nvem_cache_size=cache_size,
        )
    raise ValueError(f"unknown second-level cache kind {kind!r}")


def debit_credit_config(
    scheme: StorageScheme,
    update_strategy: UpdateStrategy = UpdateStrategy.NOFORCE,
    buffer_size: int = 2000,
    seed: int = 1,
) -> SystemConfig:
    """Assemble the full SystemConfig for a Debit-Credit experiment."""
    partitions = build_debit_credit_partitions(
        allocation=scheme.db_allocation,
        bt_allocation=scheme.bt_allocation,
        nvem_caching=scheme.nvem_caching,
        nvem_write_buffer=scheme.nvem_write_buffer,
    )
    cm = default_cm(update_strategy=update_strategy,
                    buffer_size=buffer_size)
    cm.nvem_cache_size = scheme.nvem_cache_size
    cm.nvem_write_buffer_size = scheme.nvem_write_buffer_size
    cm.mm_policy = scheme.mm_policy
    config = SystemConfig(
        partitions=partitions,
        disk_units=list(scheme.disk_units),
        devices=list(scheme.devices),
        nvem=default_nvem(),
        cm=cm,
        log=scheme.log,
        seed=seed,
    )
    config.validate()
    return config
