"""Price-performance model: dollars per cluster, dollars per tps.

"A Measure of Transaction Processing Power" and its 20-years-later
retrospective insist configurations are compared on *price*
performance, not raw TPS.  This module prices a cluster from the 1990
storage price list (:mod:`repro.analysis.cost`) plus a per-node CM
price: every node pays for its main-memory buffer, the pages of each
partition at its allocation target's store, its NVEM cache/write
buffer, a log window, and the node itself.  The experiment runner
divides the total by measured throughput for the ``$/tps`` column.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.cost import configuration_cost
from repro.core.config import (
    DiskUnitType,
    MEMORY,
    NVEM,
    SystemConfig,
)

__all__ = ["LOG_WINDOW_PAGES", "cluster_cost", "node_cost"]

#: Pages of log capacity priced per node (a retained on-line window;
#: the log itself grows without bound during a run).
LOG_WINDOW_PAGES = 5_000

#: Device-registry kinds beyond the classic unit table, mapped to the
#: closest 1990 store for pricing.
_DEVICE_KIND_STORES = {
    "flash_ssd": "ssd",
    "battery_dram": "nvem",
}


def _store_of_unit(config: SystemConfig, unit_name: str) -> str:
    """Price store backing a disk-interface device name."""
    for unit in config.disk_units:
        if unit.name == unit_name:
            return "ssd" if unit.unit_type == DiskUnitType.SSD else "disk"
    for spec in config.devices:
        if spec.name == unit_name:
            return _DEVICE_KIND_STORES.get(spec.kind, "disk")
    raise KeyError(f"unknown allocation target {unit_name!r}")


def _store_of(config: SystemConfig, allocation: str) -> str:
    if allocation == MEMORY:
        return "main_memory"
    if allocation == NVEM:
        return "nvem"
    return _store_of_unit(config, allocation)


def node_allocations(config: SystemConfig) -> List[Tuple[str, int]]:
    """``(store, pages)`` pairs pricing one node's storage."""
    allocations: List[Tuple[str, int]] = [
        ("main_memory", config.cm.buffer_size),
    ]
    for part in config.partitions:
        allocations.append((_store_of(config, part.allocation),
                            part.num_pages))
    for unit in config.disk_units:
        if unit.cache_size > 0:
            allocations.append(("disk_cache", unit.cache_size))
    if config.cm.nvem_cache_size > 0:
        allocations.append(("nvem", config.cm.nvem_cache_size))
    if config.cm.nvem_write_buffer_size > 0:
        allocations.append(("nvem", config.cm.nvem_write_buffer_size))
    allocations.append((_store_of(config, config.log.device),
                        LOG_WINDOW_PAGES))
    return allocations


def node_cost(config: SystemConfig, node_price: float) -> float:
    """Price of one node: CM price plus its storage allocations."""
    return node_price + configuration_cost(node_allocations(config))


def cluster_cost(config) -> float:
    """Total price of a :class:`~repro.cluster.config.ClusterConfig`."""
    return config.num_nodes * node_cost(config.node, config.node_price)
