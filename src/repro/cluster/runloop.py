"""The shared warm-up/measure loop for multi-node systems.

:meth:`repro.core.model.TransactionSystem.run` established the
measurement discipline every results-producing system follows: warm
up, reset the collectors, then advance the clock in twenty slices,
sampling the input queue each slice and cutting the run short once the
queue diverges (an open system past capacity has unbounded response
times; the paper simply does not plot such points).

:func:`measured_run` is that discipline extracted once, so the cluster
and the shared-disk distributed system produce Results under exactly
the same rules as the central case.  The host system supplies
``start_workload`` / ``_reset_measurements`` / ``snapshot`` plus an
admission queue via ``tm.input_queue_length``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.metrics import Results

__all__ = ["measured_run"]

#: Queue samples per measurement window (one per slice).
SLICES = 20


def measured_run(system, warmup: float, duration: float,
                 saturation_queue_limit: Optional[int],
                 default_queue_limit: int) -> Results:
    """Warm up, measure in slices with a saturation guard, snapshot."""
    if warmup < 0 or duration <= 0:
        raise ValueError("warmup must be >= 0 and duration > 0")
    if saturation_queue_limit is None:
        saturation_queue_limit = default_queue_limit
    system.start_workload()
    env = system.env
    if warmup > 0:
        env.run(until=env.now + warmup)
    system._reset_measurements()

    end_time = env.now + duration
    slice_len = duration / SLICES
    for _ in range(SLICES):
        env.run(until=min(env.now + slice_len, end_time))
        queue = system.tm.input_queue_length
        system.metrics.note_input_queue(queue)
        if queue > saturation_queue_limit:
            system.metrics.saturated = True
            break
    return system.snapshot()
