"""Per-node crash injection and GEM failover for the cluster.

A node crash follows the same sequence as the central case's
:class:`~repro.recovery.crash.CrashController` — gate shut, in-flight
work interrupted, volatile buffer discarded, restart replay through
the node's real devices — but scoped to one node while its siblings
keep processing.

What is new is the *distributed* consequence: a crashed coordinator
leaves prepared participants on other nodes **in doubt**, holding
their locks.  In Rahm's shared-nothing-with-GEM argument, the commit
decisions mirrored into global extended memory let a surviving node
resolve those pieces after failure detection instead of waiting out
the full restart: after ``gem_failover_delay`` the injector looks
every orphaned piece up in the GEM decision table — decision present
⇒ commit, absent ⇒ presumed abort — and releases the participants.
The in-doubt window (vote to decision) feeds the ``in_doubt_time``
column of the results.
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from repro.recovery.crash import RestartStats

__all__ = ["ClusterFaultInjector"]


class ClusterFaultInjector:
    """Crashes nodes on the configured deterministic schedule."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.env = cluster.env
        #: ``(node_id, RestartStats)`` per restart, most recent last.
        self.restarts: List[Tuple[int, RestartStats]] = []

    def start(self) -> None:
        """Wire per-node recovery and spawn the injector process.

        No-op without a crash schedule, so fault-free clusters pay
        neither DPT bookkeeping nor checkpoint traffic.
        """
        if not self.cluster.config.crash_schedule:
            return
        self.cluster.metrics.recovery_enabled = True
        for node in self.cluster.nodes:
            node.enable_recovery()
            node.start_recovery()
        self.env.process(self._run())

    # -- internals -------------------------------------------------------
    def _run(self) -> Generator:
        for node_id, instant in self.cluster.config.crash_schedule:
            delay = instant - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            node = self.cluster.nodes[node_id]
            if not node.tm.is_online:
                # This node is already down (its restart is still
                # replaying): the scheduled crash adds nothing.
                continue
            # Restarts run as their own processes so a second node can
            # crash while the first is still replaying — the metrics
            # charge the *union* of the overlapping down-intervals.
            self.env.process(self._crash_and_restart(node))

    def _crash_and_restart(self, node) -> Generator:
        cluster = self.cluster
        env = self.env
        crashed_at = env.now
        # 1. Gate shut; the rest of the cluster keeps running.
        cluster.metrics.note_outage_start()
        node.tm.take_offline()
        # 2. Volatile state lost: local transactions, remote pieces
        #    hosted here (their coordinators are told "failed"/"no"),
        #    and any checkpoint in progress.
        admitted = node.tm.active
        node.tm.interrupt_active("crash")
        if node.checkpointer is not None:
            node.checkpointer.on_crash()
        snapshot = node.tracker.on_crash(
            time=crashed_at,
            log_tail=node.storage.log_page_count,
            in_flight=admitted,
        )
        node.bm.crash_reset()
        # 3. GEM failover runs concurrently with the restart: the
        #    in-doubt pieces this node *coordinated* on other nodes are
        #    resolved from the mirrored decision table after failure
        #    detection — they do not wait for the full restart.
        env.process(self._failover(node.node_id))
        # Let the interrupt carriers deliver so victims unwind first.
        yield env.timeout(0.0)
        # 4. Restart replay through this node's devices.
        stats = yield from node.replayer.replay(snapshot)
        self.restarts.append((node.node_id, stats))
        cluster.metrics.record_crash(env.now - crashed_at, stats)
        # 5. Reopen for business.
        node.tm.go_online()

    def _failover(self, node_id: int) -> Generator:
        yield self.env.timeout(self.cluster.config.gem_failover_delay)
        self.cluster.resolve_in_doubt(node_id)
