"""The sharded cluster: N shared-nothing nodes plus 2PC glue.

:class:`ClusterSystem` wires ``num_nodes`` complete per-node stacks
(:class:`~repro.cluster.node.ClusterNode`) onto one simulation
environment, routes every transaction to the home node of its branch,
and holds the little shared state two-phase commit needs:

* the **message bus** (send/receive CPU bursts + wire latency, the
  same :class:`~repro.distributed.messages.MessageBus` the shared-disk
  system uses),
* the **GEM decision table** — commit decisions mirrored into global
  extended memory at decision-force time, which is what lets a
  survivor resolve a crashed coordinator's in-doubt participants
  (presumed abort for everything not in the table),
* the **pending-piece registry** the GEM failover walks.

The public surface mirrors
:class:`~repro.core.model.TransactionSystem` (``run`` / ``snapshot`` /
``tm.submit``), so the experiment runner and exporters treat a cluster
point exactly like a central one — plus a populated ``cluster`` block
in its Results (nodes, $ cost, 2PC counters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.cost import cluster_cost
from repro.cluster.faults import ClusterFaultInjector
from repro.cluster.node import ClusterNode
from repro.cluster.partition import PartitionMap
from repro.cluster.runloop import measured_run
from repro.cluster.twopc import RemotePiece
from repro.core.metrics import MetricsCollector, Results
from repro.core.transaction import Transaction
from repro.distributed.messages import MessageBus
from repro.sim import Environment, RandomStreams

__all__ = ["ClusterNodeResults", "ClusterRouter", "ClusterSystem"]


@dataclass
class ClusterNodeResults:
    """One node's share of the measurement window (committed only)."""

    node_id: int
    committed: int
    cpu_utilization: float


class ClusterRouter:
    """The system's ``tm``: submits to the home node, aggregates queues."""

    def __init__(self, system: "ClusterSystem"):
        self.system = system

    def submit(self, tx: Transaction) -> None:
        home = getattr(tx, "home_node", 0)
        self.system.nodes[home].tm.submit(tx)

    @property
    def input_queue_length(self) -> int:
        # The saturation guard trips on the *worst* node: one diverging
        # shard makes the whole cluster's response times unbounded.
        return max(node.tm.input_queue_length
                   for node in self.system.nodes)

    @property
    def submitted(self) -> int:
        return sum(node.tm.submitted for node in self.system.nodes)


class ClusterSystem:
    """N-node shared-nothing cluster with presumed-abort 2PC."""

    def __init__(self, config: ClusterConfig, workload,
                 seed: Optional[int] = None):
        config.validate()
        self.config = config
        self.env = Environment()
        self.streams = RandomStreams(seed if seed is not None
                                     else config.seed)
        self.metrics = MetricsCollector(self.env)
        self.metrics.cluster_enabled = True
        self.metrics.cluster_nodes = config.num_nodes
        self.metrics.cluster_cost = cluster_cost(config)
        self.partition_map = PartitionMap(config.num_nodes)
        self.bus = MessageBus(self.env, config.coupling)
        # Observability rides on the node template's TraceConfig.  The
        # tracer must exist before the nodes: each node wires a
        # per-node view (shared span buffer, node-tagged) into its own
        # components.
        trace_cfg = config.node.trace
        self.tracer = None
        self.telemetry = None
        if trace_cfg.enabled:
            from repro.trace.tracer import Tracer

            self.tracer = Tracer(self.env, streams=self.streams,
                                 sample=trace_cfg.sample,
                                 max_spans=trace_cfg.max_spans)
            self.metrics.tracer = self.tracer
        if trace_cfg.latency_detail:
            self.metrics.latency_detail = True
            self.metrics.slo_threshold = trace_cfg.slo_ms / 1000.0
        self.nodes: List[ClusterNode] = [
            ClusterNode(i, self) for i in range(config.num_nodes)
        ]
        self.tm = ClusterRouter(self)
        if trace_cfg.telemetry_interval > 0:
            from repro.trace.telemetry import TelemetrySampler

            self.telemetry = TelemetrySampler(
                self, trace_cfg.telemetry_interval,
                max_samples=trace_cfg.telemetry_max_samples)
            self.metrics.telemetry = self.telemetry
        self.faults = ClusterFaultInjector(self)
        #: GEM-mirrored commit decisions (tx_id -> True), written at
        #: decision-force time, dropped once every participant learned
        #: the outcome.
        self.decisions: Dict[int, bool] = {}
        #: Live distributed transactions: tx_id -> (home, pieces).
        self._pending: Dict[int, Tuple[int, List[RemotePiece]]] = {}
        self._branch_counter = 0
        self._node_completed_base = [0] * config.num_nodes
        self.workload = workload
        self._started = False

    # -- 2PC shared state ------------------------------------------------
    def next_branch_id(self) -> int:
        """Unique id for a branch transaction.  Negative, so branch ids
        can never collide with workload tx ids in a node's lock table."""
        self._branch_counter += 1
        return -self._branch_counter

    def register_pieces(self, tx, pieces: List[RemotePiece]) -> None:
        self._pending[tx.tx_id] = (tx.home_node, pieces)

    def clear_pieces(self, tx) -> None:
        self._pending.pop(tx.tx_id, None)
        self.decisions.pop(tx.tx_id, None)

    def record_decision(self, tx_id: int) -> None:
        """Mirror a forced commit decision into GEM."""
        self.decisions[tx_id] = True

    def resolve_in_doubt(self, node_id: int) -> None:
        """GEM failover for a crashed coordinator: every piece it left
        pending commits if its decision is mirrored, else aborts
        (presumed abort)."""
        orphaned = [tx_id for tx_id, (home, _) in self._pending.items()
                    if home == node_id]
        resolved = 0
        for tx_id in orphaned:
            _, pieces = self._pending.pop(tx_id)
            outcome = "commit" if self.decisions.pop(tx_id, False) \
                else "abort"
            for piece in pieces:
                if not piece.decision.triggered:
                    piece.decision.succeed(outcome)
                    resolved += 1
        if resolved:
            self.metrics.record_failover(resolved)

    # -- lifecycle (mirrors TransactionSystem) ---------------------------
    def start_workload(self) -> None:
        if not self._started:
            prewarm = getattr(self.workload, "prewarm", None)
            if prewarm is not None:
                prewarm(self)
            self.faults.start()
            if self.telemetry is not None:
                self.telemetry.start()
            self.workload.start(self)
            self._started = True

    def _reset_measurements(self) -> None:
        self.metrics.reset()
        for node in self.nodes:
            node.cpu.reset_stats()
            node.storage.reset_stats()
        self.bus.stats.reset()
        self._node_completed_base = [node.tm.completed
                                     for node in self.nodes]

    def run(self, warmup: float = 5.0, duration: float = 30.0,
            saturation_queue_limit: Optional[int] = None) -> Results:
        return measured_run(
            self, warmup, duration, saturation_queue_limit,
            default_queue_limit=4 * self.config.node.cm.mpl,
        )

    def snapshot(self) -> Results:
        devices = {}
        for node in self.nodes:
            for name, report in node.storage.utilization_report().items():
                devices[f"n{node.node_id}:{name}"] = report
        cpu_util = sum(n.cpu.utilization for n in self.nodes) / \
            len(self.nodes)
        return self.metrics.finalize(
            cpu_utilization=cpu_util,
            device_utilization=devices,
        )

    def node_results(self) -> List[ClusterNodeResults]:
        """Per-node committed counts for the measurement window only
        (deltas against the post-warm-up baseline, matching the
        committed-only rule of the shared metrics)."""
        return [
            ClusterNodeResults(
                node_id=node.node_id,
                committed=node.tm.completed -
                self._node_completed_base[node.node_id],
                cpu_utilization=node.cpu.utilization,
            )
            for node in self.nodes
        ]

    def message_stats(self) -> Dict[str, int]:
        return self.bus.stats.as_dict()
