"""One computing module of the cluster.

A node is a complete single-node TPSIM stack — its own device
registry, CPU complex, lock table, buffer and transaction manager —
sharing only the simulation clock, the random streams and the metrics
collector with its siblings.  This is the paper's *shared-nothing*
node model: the sole inter-node channels are the message bus and the
GEM-mirrored commit decisions.

The node duck-types :class:`~repro.core.model.TransactionSystem`
closely enough (``env`` / ``config`` / ``cpu`` / ``storage`` / ``bm``
/ ``tm`` / ``metrics``) that the recovery subsystem's checkpointer and
restart replayer run against it unchanged — per-node crash recovery
reuses the exact machinery of the central case.
"""

from __future__ import annotations

from repro.cluster.twopc import ClusterTransactionManager
from repro.core.bm import BufferManager
from repro.core.cc import LockManager
from repro.core.cpu import CPUPool
from repro.recovery.checkpoint import Checkpointer
from repro.recovery.crash import RestartReplayer
from repro.recovery.tracker import RecoveryTracker
from repro.storage.hierarchy import StorageSubsystem

__all__ = ["ClusterNode"]


class ClusterNode:
    """Full per-node stack over one shard of the database."""

    def __init__(self, node_id: int, cluster):
        self.node_id = node_id
        self.cluster = cluster
        self.env = cluster.env
        self.config = cluster.config.node
        self.metrics = cluster.metrics
        self.streams = cluster.streams
        self.storage = StorageSubsystem(self.env, self.streams, self.config)
        self.cpu = CPUPool(self.env, self.streams, self.config.cm)
        self.locks = LockManager(self.env, self.metrics)
        self.bm = BufferManager(self.env, self.streams, self.config,
                                self.cpu, self.storage, self.metrics)
        self.tm = ClusterTransactionManager(self, cluster)
        #: Node-tagged view of the cluster's shared tracer (``None``
        #: when tracing is off).  The restart replayer reads it off the
        #: node through the same duck-typed surface as the central case.
        self.tracer = None
        cluster_tracer = getattr(cluster, "tracer", None)
        if cluster_tracer is not None:
            view = cluster_tracer.for_node(node_id)
            self.tracer = view
            self.tm.tracer = view
            self.locks.tracer = view
            self.bm.tracer = view
        self.tracker = None
        self.checkpointer = None
        self.replayer = None

    def enable_recovery(self) -> None:
        """Wire per-node crash-recovery state (tracker, fuzzy
        checkpointer, restart replayer).  Called by the fault injector
        only when the cluster has a crash schedule — an unwired node
        skips all DPT bookkeeping on the hot path."""
        tracker = RecoveryTracker(
            now=lambda: self.env.now,
            log_tail=lambda: self.storage.log_page_count,
        )
        self.tracker = tracker
        self.bm.recovery_tracker = tracker
        self.checkpointer = Checkpointer(self, tracker)
        self.replayer = RestartReplayer(self, tracker)

    def start_recovery(self) -> None:
        if self.checkpointer is not None:
            self.checkpointer.start()
