"""Account-to-node partitioning for the sharded cluster.

The cluster shards the Debit-Credit database by branch: global branch
``b`` lives on node ``b mod N`` and maps to local branch ``b div N``
inside that node's own partition set.  The mapping is

* **deterministic** — a pure function of ``(index, num_nodes)``;
* **total** — every non-negative index maps to exactly one node; and
* **balanced** — for any prefix ``[0, M)`` of indices, the per-node
  counts differ by at most one (the documented balance bound the
  property tests verify).

This is the same horizontal partitioning Gray's "Thousands of
DebitCredit TPS" clusters use: a transaction's home node is derived
from its branch, and only the (paper's 15%-style) remote-account
transactions ever leave it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PartitionMap"]


@dataclass(frozen=True)
class PartitionMap:
    """Round-robin (modulo) sharding of a global index space."""

    num_nodes: int

    def __post_init__(self):
        if self.num_nodes < 1:
            raise ValueError("PartitionMap needs at least one node")

    def node_of(self, index: int) -> int:
        """Home node of a global index (total for any index >= 0)."""
        if index < 0:
            raise ValueError(f"negative global index {index}")
        return index % self.num_nodes

    def local_index(self, index: int) -> int:
        """Position of a global index inside its home node's shard."""
        if index < 0:
            raise ValueError(f"negative global index {index}")
        return index // self.num_nodes

    def global_index(self, node: int, local: int) -> int:
        """Inverse mapping: the global index of ``local`` on ``node``."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        if local < 0:
            raise ValueError(f"negative local index {local}")
        return local * self.num_nodes + node

    def shard_size(self, node: int, total: int) -> int:
        """Number of indices from ``[0, total)`` living on ``node``."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        return (total - node + self.num_nodes - 1) // self.num_nodes \
            if total > node else 0
