"""Presumed-abort two-phase commit across cluster nodes.

The protocol follows the presumed-abort variant of [MLO86] as TP
monitors of the paper's era shipped it:

* The coordinator (the transaction's home node) farms each remote
  piece out to its participant node, where a *branch transaction*
  acquires locks and fixes pages through that node's own lock table,
  buffer and devices.
* At commit, the coordinator sends PREPARE; the participant **forces a
  prepare record** through its real log device, votes YES and is then
  *in doubt* — its locks stay held until a decision arrives.
* The coordinator **forces the commit decision record** through its
  own log device (this is the ordinary commit log write), mirrors the
  decision into the cluster's global extended memory, and notifies the
  participants; participant commit records are written outside the
  coordinator's critical path (presumed abort never forces them).
* No decision record ⇒ abort.  A participant that asks about an
  unknown transaction is told to abort — which is exactly how the GEM
  failover resolves the in-doubt pieces of a crashed coordinator
  (:mod:`repro.cluster.faults`).

Because both forced records go through each node's **device
registry**, NVEM-vs-disk log placement changes commit latency exactly
as the paper's §4 shows for the central case — paid once per phase.

Deadlock safety across nodes: per-node detectors cannot see
distributed cycles, so the coordinator completes **all remote work
before acquiring any home lock**.  Every transaction then locks its
single remote account page before any home page; with the
Debit-Credit reference strings (one ACCOUNT page, then one
BRANCH/TELLER page) all lock acquisitions follow one global
ACCOUNT-before-BRANCH/TELLER order, which no two transactions can
invert — no cross-node deadlock can form.
"""

from __future__ import annotations

from typing import Generator, List, Sequence, Tuple

from repro.core.cc import LockMode, LockOutcome
from repro.core.config import CCMode
from repro.core.tm import TransactionManager
from repro.core.transaction import ObjectRef, Transaction
from repro.sim import Event

__all__ = ["ClusterTransaction", "ClusterTransactionManager", "RemotePiece"]


class ClusterTransaction(Transaction):
    """A transaction with a home node and optional remote pieces."""

    __slots__ = ("home_node", "remote_work")

    def __init__(self, tx_id: int, tx_type: str, refs: List[ObjectRef],
                 home_node: int,
                 remote_work: Sequence[Tuple[int, Tuple[ObjectRef, ...]]]
                 = ()):
        super().__init__(tx_id, tx_type, refs)
        self.home_node = home_node
        #: ``(participant_node, refs)`` per remote piece.
        self.remote_work = tuple(remote_work)

    @property
    def is_distributed(self) -> bool:
        return bool(self.remote_work)


class RemotePiece:
    """One remote branch of a distributed transaction.

    The four events are the 2PC wire protocol between coordinator and
    participant; each is signalled at most once (all senders guard on
    ``triggered`` — abort paths and GEM failover may race with the
    normal protocol)."""

    __slots__ = ("node_id", "refs", "branch_tx", "work_done",
                 "prepare_req", "vote", "decision", "in_doubt_from")

    def __init__(self, env, node_id: int, refs: Tuple[ObjectRef, ...],
                 branch_tx: Transaction):
        self.node_id = node_id
        self.refs = refs
        self.branch_tx = branch_tx
        #: Participant finished its work: value "ok" or "failed".
        self.work_done = Event(env)
        #: Coordinator's PREPARE request.
        self.prepare_req = Event(env)
        #: Participant's vote: "yes" (prepare record forced) or "no".
        self.vote = Event(env)
        #: Final decision: "commit" or "abort".
        self.decision = Event(env)
        #: Instant the participant voted (start of the in-doubt window).
        self.in_doubt_from = 0.0


class ClusterTransactionManager(TransactionManager):
    """Per-node TM running coordinator and participant state machines."""

    def __init__(self, node, cluster):
        super().__init__(cluster.env, node.config, node.cpu, node.locks,
                         node.bm, cluster.metrics, streams=cluster.streams)
        self.node = node
        self.cluster = cluster

    # -- participant side ------------------------------------------------
    def spawn_piece(self, tx: ClusterTransaction,
                    piece: RemotePiece) -> None:
        """Start the participant process for one remote piece.

        Registered in this node's lifecycle table (keyed by the unique
        branch id) so a crash of the *participant* node interrupts it
        like any local transaction."""
        key = ("piece", piece.branch_tx.tx_id)
        proc = self.env.process(self._piece_lifecycle(key, tx, piece))
        self._lifecycles[key] = proc

    def _piece_lifecycle(self, key, tx: ClusterTransaction,
                         piece: RemotePiece) -> Generator:
        try:
            yield from self._piece_body(tx, piece)
        finally:
            self._lifecycles.pop(key, None)

    def _piece_body(self, tx: ClusterTransaction,
                    piece: RemotePiece) -> Generator:
        from repro.sim import Interrupt

        env = self.env
        btx = piece.branch_tx
        # Participant spans are diagnostic details keyed by the branch
        # id (piece.work / piece.prepare / piece.indoubt); inline
        # checks are fine off the single-node hot path.
        traced = btx.traced and self.tracer is not None
        try:
            gate = self._offline_gate
            if gate is not None:
                # The participant node is down: the piece waits out the
                # restart (the coordinator blocks on work_done).
                yield gate
            btx.start_time = env.now
            work_from = env.now
            for ref in piece.refs:
                part = self.partitions[ref.partition_index]
                if part.cc_mode is not CCMode.NONE:
                    mode = LockMode.X if ref.is_write else LockMode.S
                    outcome = yield from self.locks.acquire(
                        btx, self._lock_id(ref.partition_index, part, ref),
                        mode,
                    )
                    if outcome is LockOutcome.DEADLOCK:
                        self.locks.release_all(btx)
                        if not piece.work_done.triggered:
                            piece.work_done.succeed("failed")
                        return
                burst = self.cpu.execute_event(btx, self.cm.instr_or)
                if burst is not None:
                    yield burst
                if self.bm.fix_page_fast(btx, ref) is None:
                    yield from self.bm.fix_page_miss(btx, ref)
            if not piece.work_done.triggered:
                piece.work_done.succeed("ok")
            if traced and env.now > work_from:
                self.tracer.span("piece.work", btx.tx_id, work_from,
                                 env.now)
            # Wait for PREPARE — or an abort decision (coordinator
            # deadlock, a sibling piece's NO vote, or GEM failover
            # after a coordinator crash: presumed abort).
            yield env.any_of([piece.prepare_req, piece.decision])
            if piece.decision.triggered:
                self.locks.release_all(btx)
                return
            # Phase 1: force the prepare record through this node's
            # log device, then vote YES.  From here until the decision
            # arrives the piece is in doubt: locks stay held.
            prepare_from = env.now
            yield from self.bm.force_log_record(btx)
            if traced:
                self.tracer.span("piece.prepare", btx.tx_id,
                                 prepare_from, env.now)
            piece.in_doubt_from = env.now
            home = self.cluster.nodes[tx.home_node]
            yield from self.cluster.bus.one_way(
                btx, self.cpu, home.cpu, kind="2pc_vote")
            if not piece.vote.triggered:
                piece.vote.succeed("yes")
            decision = yield piece.decision
            self.metrics.record_in_doubt(env.now - piece.in_doubt_from)
            if traced and env.now > piece.in_doubt_from:
                self.tracer.span("piece.indoubt", btx.tx_id,
                                 piece.in_doubt_from, env.now)
            if decision == "commit":
                # Participant commit record + (FORCE) page writes —
                # off the coordinator's response-time path.
                yield from self.bm.commit(btx)
            self.locks.release_all(btx)
        except Interrupt:
            # Participant node crash: volatile state is gone; redo is
            # the restart replayer's job.  Tell the coordinator so it
            # does not block on a dead piece.
            self.locks.withdraw(btx)
            self.locks.release_all(btx)
            if not piece.work_done.triggered:
                piece.work_done.succeed("failed")
            if not piece.vote.triggered:
                piece.vote.succeed("no")

    # -- coordinator side ------------------------------------------------
    def _execute(self, tx: Transaction) -> Generator:
        cluster = self.cluster
        env = self.env
        remote_work = getattr(tx, "remote_work", ())
        # Tracing here is inline (no duplicated twin): the cluster path
        # already pays message/protocol machinery per transaction, so a
        # handful of predictable branches is inside the kernel
        # benchmark's noise — unlike the single-node hot loop.
        traced = tx.traced and self.tracer is not None
        while True:
            tx.start_time = env.now
            t0 = env.now
            burst = self.cpu.execute_event(tx, self.cm.instr_bot)
            if burst is not None:
                yield burst
                if traced and env.now > t0:
                    self.tracer.span("cpu.bot", tx.tx_id, t0, env.now)
            aborted = False
            pieces: List[RemotePiece] = []
            if remote_work:
                work_from = env.now
                for node_id, refs in remote_work:
                    branch = Transaction(cluster.next_branch_id(),
                                         tx.tx_type, list(refs))
                    branch.traced = tx.traced
                    pieces.append(RemotePiece(env, node_id, refs, branch))
                # Registered before the first message: a coordinator
                # crash at any later instant leaves the pieces for the
                # GEM failover to resolve.
                cluster.register_pieces(tx, pieces)
                for piece in pieces:
                    remote = cluster.nodes[piece.node_id]
                    yield from cluster.bus.one_way(
                        tx, self.cpu, remote.cpu, kind="2pc_work")
                    remote.tm.spawn_piece(tx, piece)
                # Remote work completes before any home lock is taken
                # (the cross-node deadlock-avoidance order, see module
                # docstring).
                for piece in pieces:
                    status = yield piece.work_done
                    if status != "ok":
                        aborted = True
                if traced and env.now > work_from:
                    self.tracer.span("2pc.work", tx.tx_id, work_from,
                                     env.now)
            if not aborted:
                for ref in tx.refs:
                    part = self.partitions[ref.partition_index]
                    if part.cc_mode is not CCMode.NONE:
                        mode = LockMode.X if ref.is_write else LockMode.S
                        outcome = yield from self.locks.acquire(
                            tx, self._lock_id(ref.partition_index, part,
                                              ref),
                            mode,
                        )
                        if outcome is LockOutcome.DEADLOCK:
                            aborted = True
                            break
                    t0 = env.now
                    burst = self.cpu.execute_event(tx, self.cm.instr_or)
                    if burst is not None:
                        yield burst
                        if traced and env.now > t0:
                            self.tracer.span("cpu.ref", tx.tx_id, t0,
                                             env.now)
                    if self.bm.fix_page_fast(tx, ref) is None:
                        t0 = env.now
                        yield from self.bm.fix_page_miss(tx, ref)
                        if traced and env.now > t0:
                            self.tracer.span("fix", tx.tx_id, t0, env.now)
            if not aborted:
                t0 = env.now
                burst = self.cpu.execute_event(tx, self.cm.instr_eot)
                if burst is not None:
                    yield burst
                    if traced and env.now > t0:
                        self.tracer.span("cpu.eot", tx.tx_id, t0, env.now)
                commit_from = env.now
                if pieces:
                    # Phase 1: PREPARE every participant, collect votes.
                    for piece in pieces:
                        remote = cluster.nodes[piece.node_id]
                        yield from cluster.bus.one_way(
                            tx, self.cpu, remote.cpu, kind="2pc_prepare")
                        if not piece.prepare_req.triggered:
                            piece.prepare_req.succeed()
                    votes = []
                    for piece in pieces:
                        votes.append((yield piece.vote))
                    if traced and env.now > commit_from:
                        self.tracer.span("2pc.prepare", tx.tx_id,
                                         commit_from, env.now)
                    if all(vote == "yes" for vote in votes):
                        # Phase 2: force the decision record through
                        # the home log device, mirror it into GEM,
                        # then notify the participants.
                        t0 = env.now
                        yield from self.bm.commit(tx)
                        if traced and env.now > t0:
                            self.tracer.span("2pc.decision", tx.tx_id,
                                             t0, env.now)
                        cluster.record_decision(tx.tx_id)
                        t0 = env.now
                        for piece in pieces:
                            remote = cluster.nodes[piece.node_id]
                            yield from cluster.bus.one_way(
                                tx, self.cpu, remote.cpu,
                                kind="2pc_commit")
                            if not piece.decision.triggered:
                                piece.decision.succeed("commit")
                        if traced and env.now > t0:
                            self.tracer.span("2pc.notify", tx.tx_id,
                                             t0, env.now)
                        cluster.clear_pieces(tx)
                        self.locks.release_all(tx)
                        self.metrics.record_commit(
                            tx, env.now - tx.arrival_time)
                        self.metrics.record_cluster_commit(
                            True, env.now - commit_from)
                        if traced:
                            self.tracer.span("tx", tx.tx_id,
                                             tx.arrival_time, env.now)
                        return
                    aborted = True
                else:
                    # Local transaction: plain 1PC commit, but the
                    # commit phase is still measured for the
                    # 1PC-vs-2PC ablation.
                    yield from self.bm.commit(tx)
                    if traced and env.now > commit_from:
                        self.tracer.span("commit", tx.tx_id,
                                         commit_from, env.now)
                    self.locks.release_all(tx)
                    self.metrics.record_commit(
                        tx, env.now - tx.arrival_time)
                    self.metrics.record_cluster_commit(
                        False, env.now - commit_from)
                    if traced:
                        self.tracer.span("tx", tx.tx_id,
                                         tx.arrival_time, env.now)
                    return
            # Abort: presumed abort needs no abort record — just tell
            # the live participants, back out, and retry with the same
            # reference string (access invariance, as in the base TM).
            for piece in pieces:
                if not piece.decision.triggered:
                    piece.decision.succeed("abort")
            cluster.clear_pieces(tx)
            self.locks.release_all(tx)
            self.metrics.record_abort(tx)
            tx.reset_for_restart()
            if self.streams is not None:
                backoff = self.streams.exponential(
                    "restart-backoff", 0.002 * min(tx.restarts, 5)
                )
                if backoff > 0:
                    t0 = env.now
                    yield env.timeout(backoff)
                    if traced:
                        self.tracer.span("backoff", tx.tx_id, t0,
                                         env.now)
