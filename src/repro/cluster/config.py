"""Configuration of a sharded multi-node transaction cluster.

A cluster is ``num_nodes`` identical computing modules, each running
the full single-node TPSIM stack (own CPUs, buffer, lock table, log
and device registry) over its *own shard* of the Debit-Credit
database: ``branches_per_node`` branches with their tellers, accounts
and history per node.  Cross-node transactions (a home branch on one
node updating an account on another) commit through presumed-abort
two-phase commit, with prepare/decision log records forced through
each node's real log device — so NVEM-vs-disk log placement moves
commit latency exactly as in the paper's §4, just twice per
distributed commit.

:class:`ClusterConfig` is a plain dataclass, so the content-addressed
point cache fingerprints it field-by-field: changing ``num_nodes``
(or any other knob) changes the fingerprint and misses the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.config import (
    LogAllocation,
    NVEM,
    RecoveryConfig,
    SystemConfig,
    UpdateStrategy,
)
from repro.distributed.messages import CouplingConfig
from repro.experiments.defaults import (
    StorageScheme,
    db_disk_unit,
    default_cm,
    default_nvem,
    log_disk_unit,
)
from repro.workload.debit_credit import build_debit_credit_partitions

__all__ = [
    "DEFAULT_NODE_PRICE",
    "ClusterConfig",
    "cluster_config",
    "node_scheme",
]

#: 1990 list price of one computing module (CPU complex, channels,
#: chassis) in dollars — the Gray/Levine price-performance papers put
#: a mid-range TP node at a few hundred thousand dollars; the storage
#: devices are priced separately from their allocations.
DEFAULT_NODE_PRICE = 250_000.0


@dataclass
class ClusterConfig:
    """Complete description of one simulated cluster."""

    #: Per-node system template; every node is built from this config
    #: (own storage, CPUs, buffer and lock table per node).
    node: SystemConfig = field(default_factory=SystemConfig)
    num_nodes: int = 2
    #: Shard geometry (must match the template's partition sizes).
    branches_per_node: int = 25
    tellers_per_branch: int = 10
    accounts_per_branch: int = 2_000
    #: Inter-node message costs (send/receive CPU + wire latency).
    coupling: CouplingConfig = field(
        default_factory=CouplingConfig.nvem_coupling)
    #: Delay before GEM-mirrored commit decisions resolve the in-doubt
    #: participants of a crashed coordinator (failure detection plus
    #: GEM lookup; [Ra91]'s availability argument for global memory).
    gem_failover_delay: float = 0.25
    #: Deterministic node-crash schedule: ``(node_id, instant)`` pairs
    #: with strictly increasing instants.  Restarts are assumed not to
    #: overlap (one node down at a time), matching the single shared
    #: outage clock in the metrics.
    crash_schedule: Tuple[Tuple[int, float], ...] = ()
    #: Per-node fuzzy-checkpoint period (bounds restart redo work).
    checkpoint_interval: float = 10.0
    #: Dollars per computing module, for the $/tps cost model.
    node_price: float = DEFAULT_NODE_PRICE
    seed: int = 1

    def validate(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("cluster needs at least one node")
        if min(self.branches_per_node, self.tellers_per_branch,
               self.accounts_per_branch) < 1:
            raise ValueError("cluster shard geometry must be positive")
        if self.gem_failover_delay < 0:
            raise ValueError("gem_failover_delay must be >= 0")
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        if self.node_price < 0:
            raise ValueError("node_price must be >= 0")
        self.coupling.validate()
        self.node.validate()
        account = self.node.partition("ACCOUNT")
        expected = self.branches_per_node * self.accounts_per_branch
        if account.num_objects != expected:
            raise ValueError(
                f"node template has {account.num_objects} accounts, "
                f"shard geometry implies {expected}"
            )
        previous = 0.0
        for node_id, instant in self.crash_schedule:
            if not 0 <= node_id < self.num_nodes:
                raise ValueError(f"crash schedule names node {node_id}, "
                                 f"cluster has {self.num_nodes}")
            if instant <= previous:
                raise ValueError(
                    "crash schedule instants must be strictly increasing"
                )
            previous = instant

    @property
    def total_branches(self) -> int:
        return self.branches_per_node * self.num_nodes

    def build_system(self, workload, seed: Optional[int] = None):
        """Build the runnable cluster (the experiment runner's hook:
        any config with a ``build_system`` method owns system
        construction for its sweep points)."""
        from repro.cluster.system import ClusterSystem

        return ClusterSystem(self, workload, seed=seed)


def node_scheme(log: str = "nvem") -> StorageScheme:
    """Storage allocation of one cluster node.

    Database partitions on plain disks (sized for a single shard, not
    the monolithic Table 4.1 arrays); the log either in NVEM
    (``log="nvem"``) or on a single log disk (``log="disk"``) — the
    two placements the 2PC experiments compare.
    """
    units = [
        db_disk_unit("db0", num_disks=16, num_controllers=4),
        db_disk_unit("bt0", num_disks=8, num_controllers=2),
    ]
    if log == "nvem":
        log_alloc = LogAllocation(device=NVEM)
    elif log == "disk":
        units.append(log_disk_unit("log0", num_disks=1))
        log_alloc = LogAllocation(device="log0")
    else:
        raise ValueError(f"unknown cluster log placement {log!r}")
    return StorageScheme(
        name=f"cluster-{log}-log",
        db_allocation="db0",
        bt_allocation="bt0",
        log=log_alloc,
        disk_units=units,
    )


def cluster_config(
    scheme: Optional[StorageScheme] = None,
    num_nodes: int = 2,
    branches_per_node: int = 25,
    tellers_per_branch: int = 10,
    accounts_per_branch: int = 2_000,
    update_strategy: UpdateStrategy = UpdateStrategy.NOFORCE,
    buffer_size: int = 400,
    mpl: int = 60,
    coupling: Optional[CouplingConfig] = None,
    gem_failover_delay: float = 0.25,
    crash_schedule: Tuple[Tuple[int, float], ...] = (),
    checkpoint_interval: float = 10.0,
    node_price: float = DEFAULT_NODE_PRICE,
    seed: int = 1,
) -> ClusterConfig:
    """Assemble a ClusterConfig (per-node SystemConfig + cluster knobs)."""
    if scheme is None:
        scheme = node_scheme()
    partitions = build_debit_credit_partitions(
        num_branches=branches_per_node,
        tellers_per_branch=tellers_per_branch,
        accounts_per_branch=accounts_per_branch,
        allocation=scheme.db_allocation,
        bt_allocation=scheme.bt_allocation,
        nvem_caching=scheme.nvem_caching,
        nvem_write_buffer=scheme.nvem_write_buffer,
    )
    cm = default_cm(update_strategy=update_strategy,
                    buffer_size=buffer_size)
    cm.mpl = mpl
    cm.nvem_cache_size = scheme.nvem_cache_size
    cm.nvem_write_buffer_size = scheme.nvem_write_buffer_size
    cm.mm_policy = scheme.mm_policy
    node = SystemConfig(
        partitions=partitions,
        disk_units=list(scheme.disk_units),
        devices=list(scheme.devices),
        nvem=default_nvem(),
        cm=cm,
        log=scheme.log,
        # enabled stays False: the cluster wires crash handling itself
        # (per-node checkpointer + fault injector), but the per-node
        # Checkpointer reads its period from here.
        recovery=RecoveryConfig(enabled=False,
                                checkpoint_interval=checkpoint_interval),
        seed=seed,
    )
    config = ClusterConfig(
        node=node,
        num_nodes=num_nodes,
        branches_per_node=branches_per_node,
        tellers_per_branch=tellers_per_branch,
        accounts_per_branch=accounts_per_branch,
        coupling=coupling if coupling is not None
        else CouplingConfig.nvem_coupling(),
        gem_failover_delay=gem_failover_delay,
        crash_schedule=tuple(crash_schedule),
        checkpoint_interval=checkpoint_interval,
        node_price=node_price,
        seed=seed,
    )
    config.validate()
    return config
