"""Sharded multi-node transaction processing (§2, [Ra91]/[Ra92]).

The paper's workload-allocation argument assumes the Debit-Credit
database can be sharded across loosely coupled computing modules with
distributed transactions committing via two-phase commit.  This
package simulates exactly that: ``num_nodes`` complete single-node
TPSIM stacks (own devices, buffer, lock table, log) over disjoint
branch shards, presumed-abort 2PC with per-phase log forces through
each node's real log device, per-node crash injection with GEM
failover for in-doubt pieces, and a price-performance model for
``$/tps`` comparisons.

Import note: this module stays import-light (config, partitioning,
workload).  Build a runnable cluster through
:meth:`ClusterConfig.build_system` or import
:class:`repro.cluster.system.ClusterSystem` directly — the system
module pulls in the recovery and distributed layers.
"""

from repro.cluster.config import (
    DEFAULT_NODE_PRICE,
    ClusterConfig,
    cluster_config,
    node_scheme,
)
from repro.cluster.cost import cluster_cost, node_cost
from repro.cluster.partition import PartitionMap
from repro.cluster.workload import ShardedDebitCreditWorkload

__all__ = [
    "DEFAULT_NODE_PRICE",
    "ClusterConfig",
    "PartitionMap",
    "ShardedDebitCreditWorkload",
    "cluster_config",
    "cluster_cost",
    "node_cost",
    "node_scheme",
]
