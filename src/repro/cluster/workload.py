"""Sharded Debit-Credit workload for the cluster.

The Debit-Credit database is range-partitioned by branch: node *n*
owns ``branches_per_node`` branches with their tellers, accounts and
history.  Every transaction arrives at the home node of its branch; a
configurable ``distributed_fraction`` of transactions debit an account
owned by a *different* node — the classic "15% remote account"
reading of the benchmark's K%-rule under sharding — and must commit
through two-phase commit.  The remaining home-node accesses (HISTORY
append, BRANCH and TELLER updates) always stay local.

Reference order preserves the central workload's deadlock-free
discipline: the single ACCOUNT page is always (locally or remotely)
locked before the home BRANCH/TELLER page.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cluster.partition import PartitionMap
from repro.cluster.twopc import ClusterTransaction
from repro.core.transaction import ObjectRef
from repro.workload.base import PoissonArrivals
from repro.workload.debit_credit import (
    P_ACCOUNT,
    P_BRANCH_TELLER,
    P_HISTORY,
)

__all__ = ["ShardedDebitCreditWorkload"]

_HISTORY_OBJECTS = 10_000_000  # circular append file, per node


class ShardedDebitCreditWorkload:
    """SOURCE generating sharded Debit-Credit transactions."""

    def __init__(self, arrival_rate_per_node: float,
                 num_nodes: int,
                 branches_per_node: int = 25,
                 tellers_per_branch: int = 10,
                 accounts_per_branch: int = 2_000,
                 account_block_factor: int = 10,
                 history_block_factor: int = 20,
                 distributed_fraction: float = 0.15):
        if arrival_rate_per_node <= 0:
            raise ValueError("arrival rate must be positive")
        if num_nodes < 1:
            raise ValueError("need at least one node")
        if not 0.0 <= distributed_fraction <= 1.0:
            raise ValueError("distributed fraction must be in [0, 1]")
        self.arrival_rate_per_node = arrival_rate_per_node
        self.num_nodes = num_nodes
        self.branches_per_node = branches_per_node
        self.tellers_per_branch = tellers_per_branch
        self.accounts_per_branch = accounts_per_branch
        self.account_block_factor = account_block_factor
        self.history_block_factor = history_block_factor
        self.distributed_fraction = distributed_fraction
        self._bt_block = 1 + tellers_per_branch
        self._pmap = PartitionMap(num_nodes)
        self._history_cursors = [0] * num_nodes
        self._tx_counter = 0

    @classmethod
    def for_cluster(cls, config, arrival_rate_per_node: float,
                    distributed_fraction: float = 0.15
                    ) -> "ShardedDebitCreditWorkload":
        """Workload matching a ClusterConfig's shard geometry."""
        return cls(
            arrival_rate_per_node=arrival_rate_per_node,
            num_nodes=config.num_nodes,
            branches_per_node=config.branches_per_node,
            tellers_per_branch=config.tellers_per_branch,
            accounts_per_branch=config.accounts_per_branch,
            distributed_fraction=distributed_fraction,
        )

    def fingerprint_data(self) -> dict:
        """Simulation-determining parameters for the point cache
        (constructor arguments only; generation counters are per-run)."""
        return {
            "arrival_rate_per_node": self.arrival_rate_per_node,
            "num_nodes": self.num_nodes,
            "branches_per_node": self.branches_per_node,
            "tellers_per_branch": self.tellers_per_branch,
            "accounts_per_branch": self.accounts_per_branch,
            "account_block_factor": self.account_block_factor,
            "history_block_factor": self.history_block_factor,
            "distributed_fraction": self.distributed_fraction,
        }

    # -- record selection ------------------------------------------------
    def _account_ref(self, streams) -> ObjectRef:
        """One account reference in a node's local object space."""
        branch = streams.uniform_int("cdc-acct-branch", 0,
                                     self.branches_per_node - 1)
        offset = streams.uniform_int("cdc-account", 0,
                                     self.accounts_per_branch - 1)
        account = branch * self.accounts_per_branch + offset
        return ObjectRef(P_ACCOUNT, account,
                         account // self.account_block_factor, True,
                         tag="ACCOUNT")

    def make_transaction(self, streams) -> ClusterTransaction:
        # A global branch draw routed through the partition map, so the
        # map (not the workload) owns the account/branch -> node rule.
        global_branch = streams.uniform_int(
            "cdc-branch", 0,
            self.num_nodes * self.branches_per_node - 1)
        home = self._pmap.node_of(global_branch)
        branch = self._pmap.local_index(global_branch)
        teller = streams.uniform_int("cdc-teller", 0,
                                     self.tellers_per_branch - 1)
        distributed = self.num_nodes > 1 and streams.bernoulli(
            "cdc-dist", self.distributed_fraction)

        history = self._history_cursors[home]
        self._history_cursors[home] = (history + 1) % _HISTORY_OBJECTS

        bt_page = branch  # clustering: one page per branch
        branch_obj = branch * self._bt_block
        teller_obj = branch_obj + 1 + teller

        home_refs = [
            ObjectRef(P_HISTORY, history,
                      history // self.history_block_factor, True,
                      tag="HISTORY"),
            ObjectRef(P_BRANCH_TELLER, branch_obj, bt_page, True,
                      tag="BRANCH"),
            ObjectRef(P_BRANCH_TELLER, teller_obj, bt_page, True,
                      tag="TELLER"),
        ]
        remote_work: List[Tuple[int, Tuple[ObjectRef, ...]]] = []
        if distributed:
            # The account lives on another node: one remote piece,
            # executed and prepared there before any home lock is taken.
            other = streams.uniform_int("cdc-remote", 0,
                                        self.num_nodes - 2)
            remote = other if other < home else other + 1
            remote_work.append((remote, (self._account_ref(streams),)))
        else:
            home_refs.insert(0, self._account_ref(streams))
        self._tx_counter += 1
        return ClusterTransaction(self._tx_counter, "debit-credit",
                                  home_refs, home, remote_work)

    # -- warm start ------------------------------------------------------
    def prewarm(self, system) -> None:
        """Fill every node's buffer to LRU steady state, as the central
        workload does for one node."""
        for node in system.nodes:
            capacity = node.config.cm.buffer_size
            second_level = max(node.config.cm.nvem_cache_size,
                               max((u.cache_size for u in
                                    node.config.disk_units), default=0))
            n_txs = max(4000, 3 * (capacity + second_level))
            streams = system.streams
            prewarm_ref = node.bm.prewarm_reference
            cursor = self._history_cursors[node.node_id]
            for _ in range(n_txs):
                acct = self._account_ref(streams)
                bt_page = streams.uniform_int("cdc-branch", 0,
                                              self.branches_per_node - 1)
                hist_page = cursor // self.history_block_factor
                cursor = (cursor + 1) % _HISTORY_OBJECTS
                prewarm_ref(P_ACCOUNT, acct.page_no, True)
                prewarm_ref(P_HISTORY, hist_page, True)
                prewarm_ref(P_BRANCH_TELLER, bt_page, True)
                prewarm_ref(P_BRANCH_TELLER, bt_page, True)
            self._history_cursors[node.node_id] = cursor

    # -- SOURCE ----------------------------------------------------------
    def start(self, system) -> None:
        source = PoissonArrivals(
            rate=self.arrival_rate_per_node * self.num_nodes,
            factory=lambda _n: self.make_transaction(system.streams),
            stream_name="arrivals-cluster",
        )
        source.start(system)
