"""Simulation output: the statistics TPSIM reports (§4).

The paper's primary metric is mean transaction response time; TPSIM
additionally records "detailed statistics on the composition of response
time and device utilization, waiting times, queue lengths, lock
behavior, hit ratios, etc."  :class:`MetricsCollector` gathers all of
those during a run (after the warm-up boundary) and freezes them into a
plain :class:`Results` record at the end.

Hit-ratio accounting follows Table 4.2: the denominator is the number
of logical page accesses (one per object reference), and each access is
attributed to the level that satisfied it — main memory, NVEM cache,
disk cache, SSD, NVEM-resident, memory-resident or disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.transaction import Transaction
from repro.sim import Environment
from repro.sim.stats import Accumulator, CategoryCounter

__all__ = ["MetricsCollector", "Results"]

#: Access levels, in hierarchy order.
LEVEL_MEMORY_RESIDENT = "memory_resident"
LEVEL_MAIN_MEMORY = "main_memory"
LEVEL_NVEM_CACHE = "nvem_cache"
LEVEL_NVEM_RESIDENT = "nvem"
LEVEL_DISK_CACHE = "disk_cache"
LEVEL_SSD = "ssd"
LEVEL_FLASH = "flash"
LEVEL_BATTERY_DRAM = "battery_dram"
LEVEL_DISK = "disk"


@dataclass
class Results:
    """Frozen summary of one simulation run."""

    simulated_time: float
    committed: int
    aborted: int
    #: Logical page accesses observed during measurement.
    page_accesses: int
    throughput: float
    response_time_mean: float
    response_time_p95: float
    response_time_max: float
    response_by_type: Dict[str, float]
    #: Mean seconds per committed transaction, by component.
    composition: Dict[str, float]
    #: Page-access share per level (fractions of all logical accesses).
    hit_ratios: Dict[str, float]
    #: Per-tag (record type / partition) main-memory hit ratio.
    mm_hit_by_tag: Dict[str, float]
    #: Second-level (NVEM or disk cache) hit ratio per tag.
    second_level_hit_by_tag: Dict[str, float]
    #: I/O counts per committed transaction.
    io_per_tx: Dict[str, float]
    lock_stats: Dict[str, float]
    cpu_utilization: float
    device_utilization: Dict[str, Dict[str, float]]
    saturated: bool = False
    input_queue_peak: int = 0
    #: Crash-recovery/availability counters; ``None`` unless the run had
    #: the recovery subsystem enabled (keeps recovery-disabled exports
    #: bit-identical to builds without the subsystem).
    recovery: Optional[Dict[str, float]] = None
    #: Cluster / two-phase-commit counters; ``None`` unless the run was
    #: a multi-node cluster (keeps single-node exports bit-identical to
    #: builds without the cluster subsystem).
    cluster: Optional[Dict[str, float]] = None
    #: Degraded-mode / media-failure counters (degraded-window TPS, I/O
    #: retries, media-recovery MTTR distribution); ``None`` unless the
    #: run enabled media faults or online redo (keeps default-off
    #: exports bit-identical to builds without the subsystem).
    degraded: Optional[Dict[str, float]] = None
    #: Latency-distribution block (p50/p95/p99 + SLO attainment);
    #: ``None`` unless the run enabled ``TraceConfig.latency_detail``
    #: (keeps default exports bit-identical to builds without the
    #: observability subsystem).
    latency: Optional[Dict[str, float]] = None
    #: Telemetry gauge samples (:mod:`repro.trace.telemetry`); ``None``
    #: unless the run set ``TraceConfig.telemetry_interval``.
    timeseries: Optional[List[Dict]] = None

    @property
    def response_time_ms(self) -> float:
        return self.response_time_mean * 1000.0

    @property
    def response_time_p50(self) -> float:
        """Median response time; falls back to the mean when the run
        recorded no latency block."""
        if self.latency is not None:
            return self.latency.get("p50", self.response_time_mean)
        return self.response_time_mean

    @property
    def response_time_p99(self) -> float:
        """99th-percentile response time; falls back to p95 when the
        run recorded no latency block."""
        if self.latency is not None:
            return self.latency.get("p99", self.response_time_p95)
        return self.response_time_p95

    @property
    def slo_attainment(self) -> float:
        """Fraction of commits inside the SLO threshold.

        Exact when the run recorded the latency block; otherwise a
        coarse bound read off the summary statistics against the
        default 1 s threshold (TPC-A's classic 90th-percentile bound).
        """
        if self.latency is not None:
            return self.latency.get("slo_attainment", 1.0)
        if self.committed == 0:
            return 1.0
        if self.response_time_max <= 1.0:
            return 1.0
        if self.response_time_p95 <= 1.0:
            return 0.95
        if self.response_time_mean <= 1.0:
            return 0.5
        return 0.0

    @property
    def availability(self) -> float:
        """Fraction of the measured window the system was up."""
        if self.recovery is None:
            return 1.0
        return self.recovery.get("availability", 1.0)

    @property
    def restart_time_mean(self) -> float:
        """Mean restart (crash-to-admission) time in seconds — the MTTR."""
        if self.recovery is None:
            return 0.0
        return self.recovery.get("restart_time_mean", 0.0)

    @property
    def degraded_tps(self) -> float:
        """Delivered throughput while the system ran degraded (media
        rebuild in progress or online redo admitting transactions)."""
        if self.degraded is None:
            return 0.0
        return self.degraded.get("degraded_tps", 0.0)

    @property
    def media_mttr_mean(self) -> float:
        """Mean media-recovery time (loss to fully rebuilt) in seconds."""
        if self.degraded is None:
            return 0.0
        return self.degraded.get("media_mttr_mean", 0.0)

    @property
    def io_retries(self) -> float:
        """Transient-fault I/O retries survived during measurement."""
        if self.degraded is None:
            return 0.0
        return self.degraded.get("io_retries", 0.0)

    @property
    def nodes(self) -> int:
        """Computing modules the run used (1 for the central case)."""
        if self.cluster is None:
            return 1
        return int(self.cluster.get("nodes", 1))

    @property
    def dist_fraction(self) -> float:
        """Measured fraction of commits that ran two-phase commit."""
        if self.cluster is None or self.committed == 0:
            return 0.0
        return self.cluster.get("distributed_commits", 0.0) / self.committed

    @property
    def commit_phase_ms(self) -> float:
        """Mean commit-phase (EOT to lock release) time per commit."""
        if self.cluster is None or self.committed == 0:
            return 0.0
        return self.cluster.get("commit_phase_total", 0.0) \
            / self.committed * 1000.0

    @property
    def in_doubt_time(self) -> float:
        """Mean seconds a prepared 2PC participant spent in doubt
        (vote sent, decision not yet known — locks held throughout)."""
        if self.cluster is None:
            return 0.0
        prepared = self.cluster.get("prepared_pieces", 0.0)
        if prepared <= 0:
            return 0.0
        return self.cluster.get("in_doubt_total", 0.0) / prepared

    @property
    def dollars_per_tps(self) -> float:
        """Price-performance: configuration dollars per measured TPS."""
        if self.cluster is None or self.throughput <= 0:
            return 0.0
        return self.cluster.get("cost_dollars", 0.0) / self.throughput

    def normalized_response_time(self, mean_tx_size: float) -> float:
        """Response time of an "artificial transaction performing the
        average number of database accesses" (§4.6): total response time
        divided by total accesses, scaled to ``mean_tx_size`` accesses.

        This is how the paper reports trace results, where transaction
        sizes vary from a handful of accesses to 11,000.
        """
        if self.page_accesses == 0:
            return 0.0
        per_access = (self.response_time_mean * self.committed) / \
            self.page_accesses
        return per_access * mean_tx_size

    def hit_ratio(self, level: str) -> float:
        return self.hit_ratios.get(level, 0.0)

    def summary(self) -> str:
        """Human-readable one-run report."""
        lines = [
            f"simulated time      : {self.simulated_time:.2f} s",
            f"committed tx        : {self.committed}",
            f"aborted tx (dlock)  : {self.aborted}",
            f"throughput          : {self.throughput:.1f} TPS",
            f"response time       : {self.response_time_ms:.2f} ms "
            f"(p95 {self.response_time_p95 * 1000:.2f}, "
            f"max {self.response_time_max * 1000:.2f})",
            f"cpu utilization     : {self.cpu_utilization * 100:.1f} %",
            "hit ratios          : "
            + ", ".join(
                f"{level}={ratio * 100:.1f}%"
                for level, ratio in sorted(self.hit_ratios.items())
                if ratio > 0
            ),
            "ios per tx          : "
            + ", ".join(
                f"{kind}={count:.2f}"
                for kind, count in sorted(self.io_per_tx.items())
                if count > 0
            ),
        ]
        if self.recovery is not None:
            lines.append(
                f"availability        : {self.availability * 100:.2f} % "
                f"({int(self.recovery.get('crashes', 0))} crash(es), "
                f"MTTR {self.restart_time_mean:.2f} s, "
                f"{int(self.recovery.get('checkpoints', 0))} checkpoint(s))"
            )
        if self.degraded is not None:
            lines.append(
                f"degraded mode       : "
                f"{self.degraded.get('degraded_window', 0.0):.2f} s window, "
                f"{self.degraded_tps:.1f} TPS degraded, "
                f"{int(self.io_retries)} retry(ies), "
                f"{int(self.degraded.get('media_recoveries', 0))} media "
                f"recovery(ies), MTTR {self.media_mttr_mean:.2f} s"
            )
        if self.cluster is not None:
            lines.append(
                f"cluster             : {self.nodes} node(s), "
                f"{self.dist_fraction * 100:.1f} % distributed, "
                f"commit phase {self.commit_phase_ms:.2f} ms, "
                f"in-doubt {self.in_doubt_time * 1000:.2f} ms, "
                f"{self.dollars_per_tps:,.0f} $/tps"
            )
        if self.saturated:
            lines.append("WARNING             : input queue diverged (saturated)")
        return "\n".join(lines)


class MetricsCollector:
    """Accumulates statistics during a run (post-warm-up).

    The per-reference hooks (:meth:`record_page_access`,
    :meth:`record_io`) run once per logical page access / physical I/O —
    millions of times per figure — so they are plain dict-counter
    increments: no string formatting, no attribute chains beyond one
    bound dict, no allocation except the first time a tag appears.
    """

    def __init__(self, env: Environment, reservoir: int = 4000):
        self.env = env
        self.active = True
        self.measure_start = env.now
        self.response = Accumulator(reservoir=reservoir)
        self.response_by_type: Dict[str, Accumulator] = {}
        self.committed = 0
        self.aborted = 0
        self.restarts = 0
        self.page_access = CategoryCounter()
        self.page_access_by_tag: Dict[str, CategoryCounter] = {}
        self.io_counts = CategoryCounter()
        self.lock_counts = CategoryCounter()
        # Bound inner dicts for the per-reference hooks.  CategoryCounter
        # clears (never replaces) its dict on reset, so these aliases
        # stay valid across warm-up boundaries.
        self._page_counts = self.page_access._counts
        self._io_count_map = self.io_counts._counts
        self._tag_counts: Dict[str, Dict[str, int]] = {}
        self.lock_wait = Accumulator()
        self.composition_totals: Dict[str, float] = {
            "input_queue": 0.0,
            "cpu_wait": 0.0,
            "cpu_service": 0.0,
            "lock_wait": 0.0,
            "sync_io": 0.0,
            "async_io": 0.0,
            "nvem": 0.0,
        }
        self.input_queue_peak = 0
        self.saturated = False
        #: Set by the recovery subsystem when installed; makes finalize
        #: emit the availability block even for crash-free windows.
        self.recovery_enabled = False
        self.crash_count = 0
        self.checkpoint_count = 0
        #: True restart durations (MTTR numerator) vs. the part of them
        #: that fell inside the measured window (availability charge).
        self.downtime_total = 0.0
        self.window_downtime = 0.0
        self.restart_log_pages = 0
        self.restart_redo_pages = 0
        self.restart_log_scan_total = 0.0
        self.restart_redo_total = 0.0
        #: Outage accounting as a *union* of down-intervals: overlapping
        #: outages (two nodes down at once, or a media rebuild spanning
        #: a crash) charge the wall-clock once.  ``_outages_open`` counts
        #: concurrently open outages; ``_outage_union_since`` marks when
        #: the union interval opened, so finalize can charge a window
        #: that ends mid-outage.
        self._outages_open = 0
        self._outage_union_since: Optional[float] = None
        #: Set by the media/online-redo wiring; makes finalize emit the
        #: degraded block even for fault-free windows.
        self.media_enabled = False
        self.io_retry_count = 0
        self.media_recovery_count = 0
        self.media_mttr_total = 0.0
        self.media_mttr_max = 0.0
        self.media_restore_pages = 0
        self.media_redo_pages = 0
        self.media_log_pages = 0
        #: Degraded windows (media rebuild in progress or online redo
        #: admitting transactions), unioned like outages.
        self._degraded_open = 0
        self._degraded_since: Optional[float] = None
        self.degraded_window = 0.0
        self.degraded_commits = 0
        #: Set by the cluster layer; makes finalize emit the cluster
        #: block (per-phase 2PC counters + price-performance inputs).
        self.cluster_enabled = False
        self.cluster_nodes = 1
        self.cluster_cost = 0.0
        self.local_commits = 0
        self.distributed_commits = 0
        self.commit_phase_total = 0.0
        self.prepared_pieces = 0
        self.in_doubt_total = 0.0
        self.failover_resolved = 0
        #: Observability wiring (:mod:`repro.trace`), set by the system
        #: when configured.  ``latency_detail`` makes finalize emit the
        #: p50/p99/SLO block; the SLO counter itself costs one
        #: comparison per *commit* (never per event) so it is always
        #: maintained.  ``tracer``/``telemetry`` are cleared at the
        #: warm-up boundary through :meth:`reset`, which both the
        #: single-node and the cluster run loop already call.
        self.latency_detail = False
        self.slo_threshold = 1.0
        self.slo_ok = 0
        self.tracer = None
        self.telemetry = None

    @classmethod
    def lite(cls, env: Environment) -> "MetricsCollector":
        """Counters-only collector for micro-benchmarks.

        Drops the percentile reservoir (mean/min/max and every counter
        still work; :meth:`Accumulator.percentile` falls back to the
        mean), so the hot hooks never touch the sampling machinery.
        Used by ``benchmarks/kernel_bench.py``; full experiment runs
        keep the default reservoir.
        """
        return cls(env, reservoir=0)

    # -- event hooks ------------------------------------------------------
    def record_commit(self, tx: Transaction, response_time: float) -> None:
        if not self.active:
            return
        self.committed += 1
        self.response.add(response_time)
        acc = self.response_by_type.get(tx.tx_type)
        if acc is None:
            acc = self.response_by_type[tx.tx_type] = Accumulator()
        acc.add(response_time)
        totals = self.composition_totals
        totals["input_queue"] += tx.wait_input_queue
        totals["cpu_wait"] += tx.wait_cpu
        totals["cpu_service"] += tx.service_cpu
        totals["lock_wait"] += tx.wait_lock
        totals["sync_io"] += tx.wait_sync_io
        totals["async_io"] += tx.wait_async_io
        totals["nvem"] += tx.wait_nvem
        if response_time <= self.slo_threshold:
            self.slo_ok += 1
        if self._degraded_open:
            self.degraded_commits += 1

    def record_abort(self, tx: Transaction, restarted: bool = True) -> None:
        """Count an abort; ``restarted=False`` for external aborts that
        tear the transaction down without re-running it (the restart
        counter tracks deadlock victims that actually re-execute)."""
        if not self.active:
            return
        self.aborted += 1
        if restarted:
            self.restarts += 1

    def record_page_access(self, tag: Optional[str], level: str) -> None:
        if not self.active:
            return
        counts = self._page_counts
        counts[level] = counts.get(level, 0) + 1
        if tag is not None:
            by_tag = self._tag_counts.get(tag)
            if by_tag is None:
                counter = self.page_access_by_tag[tag] = CategoryCounter()
                by_tag = self._tag_counts[tag] = counter._counts
            by_tag[level] = by_tag.get(level, 0) + 1

    def record_io(self, kind: str) -> None:
        if not self.active:
            return
        counts = self._io_count_map
        counts[kind] = counts.get(kind, 0) + 1

    def record_lock_request(self, granted_immediately: bool) -> None:
        if not self.active:
            return
        self.lock_counts.add("requests")
        if not granted_immediately:
            self.lock_counts.add("conflicts")

    def record_lock_wait(self, duration: float) -> None:
        if not self.active:
            return
        self.lock_wait.add(duration)

    def record_deadlock(self) -> None:
        if not self.active:
            return
        self.lock_counts.add("deadlocks")

    def note_input_queue(self, length: int) -> None:
        if length > self.input_queue_peak:
            self.input_queue_peak = length

    def record_checkpoint(self) -> None:
        self.checkpoint_count += 1

    def record_cluster_commit(self, distributed: bool,
                              commit_phase: float) -> None:
        """Commit-phase accounting for one committed transaction:
        ``distributed`` marks two-phase commits, ``commit_phase`` is
        the EOT-to-lock-release duration in seconds."""
        if not self.active:
            return
        if distributed:
            self.distributed_commits += 1
        else:
            self.local_commits += 1
        self.commit_phase_total += commit_phase

    def record_in_doubt(self, duration: float) -> None:
        """A prepared participant's vote-to-decision window closed."""
        if not self.active:
            return
        self.prepared_pieces += 1
        self.in_doubt_total += duration

    def record_failover(self, pieces: int) -> None:
        """GEM failover resolved ``pieces`` in-doubt participants of a
        crashed coordinator (presumed abort unless a mirrored commit
        decision was found)."""
        self.failover_resolved += pieces

    def note_outage_start(self) -> None:
        """A node just went down; its restart is now in progress."""
        if self._outages_open == 0:
            self._outage_union_since = self.env.now
        self._outages_open += 1

    def note_outage_end(self) -> None:
        """One outage closed; when it was the last open one, charge the
        union interval (clipped to the measured window) to downtime."""
        self._outages_open = max(0, self._outages_open - 1)
        if self._outages_open == 0 and self._outage_union_since is not None:
            start = max(self._outage_union_since, self.measure_start)
            self.window_downtime += max(0.0, self.env.now - start)
            self._outage_union_since = None

    def record_crash(self, downtime: float, stats,
                     outage_open: bool = True) -> None:
        """One crash/restart cycle finished; ``stats`` is a
        :class:`repro.recovery.crash.RestartStats`.

        ``downtime`` is the full crash-to-admission duration (the MTTR
        numerator).  The availability charge comes from the union of
        down-intervals (:meth:`note_outage_end`), so overlapping
        multi-node outages count the wall-clock once; pass
        ``outage_open=False`` when the caller already closed the outage
        (online redo reopens admission before the redo pass finishes).
        """
        if outage_open:
            self.note_outage_end()
        self.crash_count += 1
        self.downtime_total += downtime
        self.restart_log_pages += stats.log_pages
        self.restart_redo_pages += stats.redo_pages
        self.restart_log_scan_total += stats.log_scan_time
        self.restart_redo_total += stats.redo_time

    # -- degraded mode / media failures ------------------------------------
    def note_degraded_start(self) -> None:
        """The system keeps running but degraded (media rebuild under
        way, or online redo gating pages while admitting work)."""
        if self._degraded_open == 0:
            self._degraded_since = self.env.now
        self._degraded_open += 1

    def note_degraded_end(self) -> None:
        self._degraded_open = max(0, self._degraded_open - 1)
        if self._degraded_open == 0 and self._degraded_since is not None:
            start = max(self._degraded_since, self.measure_start)
            self.degraded_window += max(0.0, self.env.now - start)
            self._degraded_since = None

    def record_io_retry(self) -> None:
        """One transient-fault I/O attempt failed and was retried."""
        if not self.active:
            return
        self.io_retry_count += 1

    def record_media_recovery(self, duration: float, stats) -> None:
        """A lost device finished rebuilding; ``stats`` is a
        :class:`repro.recovery.media.MediaRecoveryStats`."""
        self.media_recovery_count += 1
        self.media_mttr_total += duration
        if duration > self.media_mttr_max:
            self.media_mttr_max = duration
        self.media_restore_pages += stats.restore_pages
        self.media_redo_pages += stats.redo_pages
        self.media_log_pages += stats.log_pages

    # -- warm-up ------------------------------------------------------------
    def reset(self) -> None:
        """Discard everything measured so far (warm-up boundary)."""
        self.measure_start = self.env.now
        self.response.reset()
        self.response_by_type.clear()
        self.committed = 0
        self.aborted = 0
        self.restarts = 0
        self.page_access.reset()
        self.page_access_by_tag.clear()
        self._tag_counts.clear()
        self.io_counts.reset()
        self.lock_counts.reset()
        self.lock_wait.reset()
        for key in self.composition_totals:
            self.composition_totals[key] = 0.0
        self.input_queue_peak = 0
        self.saturated = False
        self.crash_count = 0
        self.checkpoint_count = 0
        self.downtime_total = 0.0
        self.window_downtime = 0.0
        self.restart_log_pages = 0
        self.restart_redo_pages = 0
        self.restart_log_scan_total = 0.0
        self.restart_redo_total = 0.0
        self.io_retry_count = 0
        self.media_recovery_count = 0
        self.media_mttr_total = 0.0
        self.media_mttr_max = 0.0
        self.media_restore_pages = 0
        self.media_redo_pages = 0
        self.media_log_pages = 0
        self.degraded_window = 0.0
        self.degraded_commits = 0
        self.local_commits = 0
        self.distributed_commits = 0
        self.commit_phase_total = 0.0
        self.prepared_pieces = 0
        self.in_doubt_total = 0.0
        self.failover_resolved = 0
        self.slo_ok = 0
        if self.tracer is not None:
            self.tracer.clear()
        if self.telemetry is not None:
            self.telemetry.reset()

    # -- finalization ------------------------------------------------------
    def finalize(self, cpu_utilization: float,
                 device_utilization: Dict[str, Dict[str, float]]) -> Results:
        span = self.env.now - self.measure_start
        committed = max(self.committed, 1)
        total_accesses = max(self.page_access.total(), 1)
        hit_ratios = {
            level: count / total_accesses
            for level, count in self.page_access.as_dict().items()
        }
        mm_by_tag = {}
        second_by_tag = {}
        for tag, counter in self.page_access_by_tag.items():
            tag_total = max(counter.total(), 1)
            mm_by_tag[tag] = (
                counter.get(LEVEL_MAIN_MEMORY)
                + counter.get(LEVEL_MEMORY_RESIDENT)
            ) / tag_total
            second_by_tag[tag] = (
                counter.get(LEVEL_NVEM_CACHE) + counter.get(LEVEL_DISK_CACHE)
            ) / tag_total
        io_per_tx = {
            kind: count / committed
            for kind, count in self.io_counts.as_dict().items()
        }
        requests = self.lock_counts.get("requests")
        lock_stats = {
            "requests_per_tx": requests / committed,
            "conflict_ratio": (
                self.lock_counts.get("conflicts") / requests if requests else 0.0
            ),
            "deadlocks": float(self.lock_counts.get("deadlocks")),
            "mean_lock_wait": self.lock_wait.mean(),
        }
        composition = {
            key: total / committed
            for key, total in self.composition_totals.items()
        }
        recovery = None
        if self.recovery_enabled:
            downtime = self.window_downtime
            if self._outage_union_since is not None:
                # A restart is still in progress at the window's end:
                # charge its elapsed downtime (clipped to the window).
                downtime += self.env.now - max(self._outage_union_since,
                                               self.measure_start)
            availability = 1.0
            if span > 0:
                availability = min(1.0, max(0.0, 1.0 - downtime / span))
            recovery = {
                "crashes": float(self.crash_count),
                "checkpoints": float(self.checkpoint_count),
                "downtime": downtime,
                "availability": availability,
                "restart_time_mean": (
                    self.downtime_total / self.crash_count
                    if self.crash_count else 0.0
                ),
                "restart_log_scan_time": self.restart_log_scan_total,
                "restart_redo_time": self.restart_redo_total,
                "restart_log_pages": float(self.restart_log_pages),
                "restart_redo_pages": float(self.restart_redo_pages),
            }
        degraded = None
        if self.media_enabled:
            window = self.degraded_window
            if self._degraded_since is not None:
                # The window ends while still degraded: charge the open
                # interval (clipped to the measured window).
                window += self.env.now - max(self._degraded_since,
                                             self.measure_start)
            degraded = {
                "degraded_window": window,
                "degraded_commits": float(self.degraded_commits),
                "degraded_tps": (
                    self.degraded_commits / window if window > 0 else 0.0
                ),
                "io_retries": float(self.io_retry_count),
                "media_recoveries": float(self.media_recovery_count),
                "media_mttr_mean": (
                    self.media_mttr_total / self.media_recovery_count
                    if self.media_recovery_count else 0.0
                ),
                "media_mttr_max": self.media_mttr_max,
                "media_restore_pages": float(self.media_restore_pages),
                "media_redo_pages": float(self.media_redo_pages),
                "media_log_pages": float(self.media_log_pages),
            }
        latency = None
        if self.latency_detail:
            latency = {
                "p50": self.response.percentile(50),
                "p95": self.response.percentile(95),
                "p99": self.response.percentile(99),
                "slo_ms": self.slo_threshold * 1000.0,
                "slo_attainment": (
                    self.slo_ok / self.committed if self.committed else 1.0
                ),
            }
        timeseries = None
        if self.telemetry is not None:
            timeseries = self.telemetry.snapshot()
        cluster = None
        if self.cluster_enabled:
            cluster = {
                "nodes": float(self.cluster_nodes),
                "cost_dollars": self.cluster_cost,
                "local_commits": float(self.local_commits),
                "distributed_commits": float(self.distributed_commits),
                "commit_phase_total": self.commit_phase_total,
                "prepared_pieces": float(self.prepared_pieces),
                "in_doubt_total": self.in_doubt_total,
                "failover_resolved": float(self.failover_resolved),
            }
        return Results(
            simulated_time=span,
            committed=self.committed,
            aborted=self.aborted,
            page_accesses=self.page_access.total(),
            throughput=self.committed / span if span > 0 else 0.0,
            response_time_mean=self.response.mean(),
            response_time_p95=self.response.percentile(95),
            response_time_max=self.response.max if self.response.count else 0.0,
            response_by_type={
                name: acc.mean() for name, acc in self.response_by_type.items()
            },
            composition=composition,
            hit_ratios=hit_ratios,
            mm_hit_by_tag=mm_by_tag,
            second_level_hit_by_tag=second_by_tag,
            io_per_tx=io_per_tx,
            lock_stats=lock_stats,
            cpu_utilization=cpu_utilization,
            device_utilization=device_utilization,
            saturated=self.saturated,
            input_queue_peak=self.input_queue_peak,
            recovery=recovery,
            cluster=cluster,
            degraded=degraded,
            latency=latency,
            timeseries=timeseries,
        )
