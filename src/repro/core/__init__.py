"""TPSIM core: the paper's transaction-system model (§3).

Sub-modules:

* :mod:`repro.core.config` — every parameter of Tables 3.1/3.3/3.4.
* :mod:`repro.core.cpu` — CPU server pool with the synchronous-access
  interface (§3.2).
* :mod:`repro.core.cc` — strict two-phase locking with deadlock
  detection (§3.2).
* :mod:`repro.core.bm` — buffer manager: main-memory buffer, NVEM cache,
  NVEM write buffer, logging, FORCE/NOFORCE (§3.2).
* :mod:`repro.core.tm` — transaction manager: MPL admission, BOT/OR/EOT
  processing, two-phase commit, abort/restart (§3.2).
* :mod:`repro.core.model` — wires SOURCE + CM + devices into a runnable
  :class:`~repro.core.model.TransactionSystem`.
* :mod:`repro.core.metrics` — simulation output (response times,
  throughput, hit ratios, utilizations, lock statistics).
* :mod:`repro.core.fingerprint` — canonical content hashes of configs
  and workloads (the point-cache keys of incremental experiment runs).
"""

from repro.core.config import (
    AccessMode,
    CCMode,
    CMConfig,
    DeviceSpec,
    DiskUnitConfig,
    DiskUnitType,
    Distribution,
    LogAllocation,
    MEMORY,
    NVEM,
    NVEMCachingMode,
    NVEMConfig,
    PartitionConfig,
    PolicySpec,
    SubPartition,
    SystemConfig,
    TransactionTypeConfig,
    UpdateStrategy,
)

__all__ = [
    "AccessMode",
    "CCMode",
    "CMConfig",
    "DeviceSpec",
    "DiskUnitConfig",
    "DiskUnitType",
    "Distribution",
    "LogAllocation",
    "MEMORY",
    "NVEM",
    "NVEMCachingMode",
    "NVEMConfig",
    "PartitionConfig",
    "PolicySpec",
    "SubPartition",
    "SystemConfig",
    "TransactionTypeConfig",
    "UpdateStrategy",
]
