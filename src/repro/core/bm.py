"""The buffer manager: caching, write buffering, logging, FORCE/NOFORCE.

This module implements §3.2's buffer manager:

* a main-memory database buffer under a registry-selected replacement
  policy (global LRU in the paper; CLOCK and 2Q are available);
* an optional second-level database cache in NVEM with per-partition
  migration modes (modified / unmodified / all pages);
* the NOFORCE single-copy invariant — a page is cached in at most one
  of {main memory, NVEM}; under FORCE, forced pages stay in main memory
  and may be replicated in NVEM (the paper's double-caching effect);
* immediate asynchronous disk writes for modified pages entering NVEM
  (with the paper's discussed *deferred propagation* available as an
  extension flag);
* an optional write buffer in NVEM, shared by database partitions and
  the log, which absorbs writes while slots are free and falls through
  to synchronous disk writes when saturated;
* logging (one log page per update transaction) to NVEM, SSD, a disk
  with either kind of write buffer, or a plain disk — plus a group
  commit extension (off by default, as in the paper);
* FORCE / NOFORCE update strategies.

Timing rules: NVEM transfers hold the CPU (synchronous, §3.2); disk-unit
I/O charges ``InstrIO`` of CPU overhead and then releases the CPU while
the device works (asynchronous), unless the partition is configured
``AccessMode.SYNC``.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Set, Tuple

from repro.core.config import (
    NVEM,
    AccessMode,
    NVEMCachingMode,
    PartitionConfig,
    SystemConfig,
    UpdateStrategy,
)
from repro.core.cpu import CPUPool
from repro.core.metrics import (
    LEVEL_BATTERY_DRAM,
    LEVEL_DISK,
    LEVEL_DISK_CACHE,
    LEVEL_FLASH,
    LEVEL_MAIN_MEMORY,
    LEVEL_MEMORY_RESIDENT,
    LEVEL_NVEM_CACHE,
    LEVEL_NVEM_RESIDENT,
    LEVEL_SSD,
    MetricsCollector,
)
from repro.core.transaction import Transaction
from repro.sim import Environment, Interrupt, RandomStreams
from repro.sim.core import Event
from repro.storage.hierarchy import StorageSubsystem
from repro.storage.policies import ReplacementPolicy
from repro.storage.registry import make_policy

__all__ = ["BufferManager"]

#: Map device-level IOResult levels onto metrics levels (identical names).
#: User-registered device kinds may report their own level strings;
#: those pass through as their own hit-ratio category (the metrics
#: counters accept arbitrary level names).
_DEVICE_LEVELS = {
    "disk": LEVEL_DISK,
    "disk_cache": LEVEL_DISK_CACHE,
    "ssd": LEVEL_SSD,
    "flash": LEVEL_FLASH,
    "battery_dram": LEVEL_BATTERY_DRAM,
}

#: Migration-mode predicates: does a page with this dirtiness migrate?
_MIGRATES = {
    NVEMCachingMode.NONE: lambda dirty: False,
    NVEMCachingMode.MODIFIED: lambda dirty: dirty,
    NVEMCachingMode.UNMODIFIED: lambda dirty: not dirty,
    NVEMCachingMode.ALL: lambda dirty: True,
}


class _GroupCommitBatch:
    """One in-progress group commit (extension; §3.2 footnote 3)."""

    __slots__ = ("members", "flush_event", "done_event", "flush_proc")

    def __init__(self, env: Environment):
        self.members = 0
        self.flush_event = Event(env)
        self.done_event = Event(env)
        #: The batch's flush process, so a CM crash can kill it.
        self.flush_proc = None


class BufferManager:
    """Main-memory buffer + NVEM tiers + logging for one CM."""

    def __init__(self, env: Environment, streams: RandomStreams,
                 config: SystemConfig, cpu: CPUPool,
                 storage: StorageSubsystem, metrics: MetricsCollector):
        self.env = env
        self.config = config
        self.cm = config.cm
        self.cpu = cpu
        self.storage = storage
        self.metrics = metrics
        self._streams = streams
        self.partitions: List[PartitionConfig] = list(config.partitions)
        # Per-partition lookups for the per-reference fast path: the
        # allocation map is fixed after construction, so residency and
        # the default statistics tag reduce to list indexing.
        self._part_tags: List[str] = [p.name for p in self.partitions]
        self._part_mem_resident: List[bool] = [
            storage.is_memory_resident(p.name) for p in self.partitions
        ]
        self._noforce: bool = \
            self.cm.update_strategy is UpdateStrategy.NOFORCE

        self.mm: ReplacementPolicy = make_policy(
            self.cm.mm_policy, self.cm.buffer_size
        )
        self.nvem_cache: Optional[ReplacementPolicy] = (
            make_policy(self.cm.nvem_policy, self.cm.nvem_cache_size)
            if self.cm.nvem_cache_size > 0 else None
        )
        #: Shared NVEM write-buffer occupancy (database + log pages).
        self._wb_pending = 0
        #: Pages currently being evicted (victim reservation).
        self._evicting: Set[Tuple[int, int]] = set()
        #: Group-commit state (only used when group_commit_size > 1).
        self._group: Optional[_GroupCommitBatch] = None
        #: Dirty-page/LSN tracking for the crash-recovery subsystem
        #: (:mod:`repro.recovery`); ``None`` unless recovery is enabled,
        #: so the per-reference hooks below cost one ``is None`` test.
        self.recovery_tracker = None
        #: Per-page admission gate during online redo
        #: (:class:`repro.recovery.crash.RedoGate`); ``None`` outside
        #: the redo window.
        self.redo_gate = None
        #: Span sink when tracing is on (``None`` otherwise); only the
        #: miss/log generators touch it, never the fast hit path.
        self.tracer = None
        #: Dual-copy NVEM log mirroring: every commit forces both copies.
        self._log_mirror = config.recovery.log_mirror
        #: Diagnostics.
        self.eviction_stalls = 0

    # ------------------------------------------------------------------
    # Page access (fix)
    # ------------------------------------------------------------------
    def fix_page_fast(self, tx: Transaction, ref) -> Optional[str]:
        """Synchronous hit path for :meth:`fix_page`.

        A memory-resident reference or a main-memory buffer hit involves
        no simulated time, no I/O and no RNG draw, so it needs no
        generator at all: callers on the per-reference hot path (the
        transaction managers) try this plain call first and only fall
        back to the :meth:`fix_page_miss` generator when it returns
        ``None``.  Semantics are identical to the first iteration of the
        miss loop: recency touch, dirty marking, hit accounting.
        """
        idx = ref.partition_index
        if self._part_mem_resident[idx]:
            if self.redo_gate is not None and \
                    (idx, ref.page_no) in self.redo_gate.pending:
                # Online redo has not reached this page yet: fall into
                # the miss path, which waits on the gate.
                return None
            # 100% hit; NOFORCE propagation assumed (§3.2) — nothing to
            # track for commit beyond logging.
            self.metrics.record_page_access(
                ref.tag or self._part_tags[idx], LEVEL_MEMORY_RESIDENT
            )
            return LEVEL_MEMORY_RESIDENT
        key = (idx, ref.page_no)
        entry = self.mm.get(key)
        if entry is None:
            return None
        if ref.is_write:
            entry.dirty = True
            tx.modified_pages.add(key)
            if self.recovery_tracker is not None:
                self.recovery_tracker.note_dirty(key)
        self.metrics.record_page_access(
            ref.tag or self._part_tags[idx], LEVEL_MAIN_MEMORY
        )
        return LEVEL_MAIN_MEMORY

    def fix_page(self, tx: Transaction, ref) -> Generator:
        """Bring the referenced page into main memory; returns the level
        of the storage hierarchy that satisfied the access.

        Buffer bookkeeping is synchronous, as in TPSIM: on a miss the
        frame is claimed and the page table updated immediately; only
        the missing transaction then pays the fetch latency.  Concurrent
        accesses to the same page during the fetch window count as main
        memory hits — each page causes exactly one miss, which keeps the
        hit-ratio accounting of Table 4.2 exact and avoids artificial
        convoy wake-ups that the paper's model does not exhibit.
        """
        level = self.fix_page_fast(tx, ref)
        if level is not None:
            return level
        result = yield from self.fix_page_miss(tx, ref)
        return result

    def fix_page_miss(self, tx: Transaction, ref) -> Generator:
        """Miss continuation of :meth:`fix_page`.

        Only valid immediately after :meth:`fix_page_fast` returned
        ``None`` (the reference is not memory-resident and missed main
        memory); the loop still re-checks the buffer after every wait
        because a concurrent transaction may fetch the page meanwhile.
        """
        part = self.partitions[ref.partition_index]
        tag = ref.tag or part.name
        key = ref.page_key

        gate = self.redo_gate
        if gate is not None and key in gate.pending:
            wait_start = self.env.now
            yield from gate.wait(key)
            if tx is not None:
                tx.wait_sync_io += self.env.now - wait_start
                if tx.traced and self.tracer is not None:
                    self.tracer.span("redo.wait", tx.tx_id, wait_start,
                                     self.env.now)
        if gate is not None and self._part_mem_resident[ref.partition_index]:
            # Memory-resident references only reach the miss path while
            # gated; once released they are plain residency hits.
            self.metrics.record_page_access(tag, LEVEL_MEMORY_RESIDENT)
            return LEVEL_MEMORY_RESIDENT

        source = None
        carried_dirty = False
        while True:
            entry = self.mm.get(key)
            if entry is not None:
                if ref.is_write or carried_dirty:
                    entry.dirty = True
                    if self.recovery_tracker is not None:
                        self.recovery_tracker.note_dirty(key)
                if ref.is_write:
                    tx.modified_pages.add(key)
                self.metrics.record_page_access(tag, LEVEL_MAIN_MEMORY)
                return LEVEL_MAIN_MEMORY
            if source is None:
                # Decide (and claim) the page's source *before* making
                # room: an NVEM-cache hit frees its NVEM frame now, so
                # the MM victim's migration cannot displace the very
                # page being fetched — preserving the aggregate-LRU
                # property of MM + NVEM under NOFORCE (§4.5).
                source, carried_dirty = self._claim_source(part, key)
            if len(self.mm) < self.mm.capacity:
                break
            # Evicting may take I/O time; afterwards the page may have
            # been fetched by a concurrent transaction — re-check.  The
            # requested key itself is never a victim candidate.
            progressed = yield from self._evict_one(tx, exclude_key=key)
            if not progressed:
                self.eviction_stalls += 1
                yield self.env.timeout(1e-5)

        entry = self.mm.insert(key, dirty=ref.is_write or carried_dirty)
        if entry.dirty and self.recovery_tracker is not None:
            self.recovery_tracker.note_dirty(key)
        if ref.is_write:
            tx.modified_pages.add(key)
        # Pin the frame while its contents are in flight: a page being
        # fetched must not be chosen as a replacement victim.
        entry.fix_count += 1
        tracer = self.tracer
        fetch_from = self.env.now if tracer is not None else 0.0
        try:
            level = yield from self._pay_fetch(tx, part, key, source)
        finally:
            entry.fix_count -= 1
        if tracer is not None and tx is not None and tx.traced:
            tracer.span("io.read", tx.tx_id, fetch_from, self.env.now,
                        level)
        self.metrics.record_page_access(tag, level)
        return level

    def _claim_source(self, part: PartitionConfig, key):
        """Decide where a missing page comes from; claim NVEM hits.

        Pure state transition (no simulated time): an NVEM-cache hit
        under NOFORCE removes the NVEM copy immediately (single-copy
        invariant) so its frame is free for the migration that the MM
        eviction is about to perform.  Returns ``(source,
        carried_dirty)``; ``carried_dirty`` is True when the page moves
        out of NVEM while its disk copy is stale (deferred-propagation
        extension only).
        """
        if self.storage.is_nvem_resident(part.name):
            return LEVEL_NVEM_RESIDENT, False
        if self.nvem_cache is not None and \
                part.nvem_caching is not NVEMCachingMode.NONE:
            cached = self.nvem_cache.get(key)
            if cached is not None:
                carried_dirty = False
                if self.cm.update_strategy is UpdateStrategy.NOFORCE:
                    if cached.dirty and cached.pending_write is None:
                        carried_dirty = True
                    self.nvem_cache.remove(key)
                return LEVEL_NVEM_CACHE, carried_dirty
        return "unit", False

    def _sync_nvem(self, tx: Optional[Transaction],
                   kind: str) -> Generator:
        """One synchronous NVEM page transfer with the CPU held.

        When the NVEM bank is behind a media-fault gate, the loss wait
        happens here, CPU-free, *before* the CPU is acquired: a blocked
        transfer must not pin a CPU server for the whole rebuild (the
        rebuild needs those CPUs to make progress).
        """
        device = self.storage.nvem_device
        wait = getattr(device, "loss_wait", None)
        if wait is not None:
            yield from wait(kind)
        yield from self.cpu.execute_with_sync_access(
            tx, self.cm.instr_nvem, device.access(kind))

    def _sync_unit_loss_wait(self, part: PartitionConfig,
                             key) -> Generator:
        """CPU-free loss wait before a SYNC-mode disk access (the gate's
        own per-page block would otherwise run with the CPU held)."""
        unit = self.storage.unit_of(part.name)
        wait = getattr(unit, "loss_wait", None)
        if wait is not None:
            yield from wait(key)

    def _pay_fetch(self, tx: Transaction, part: PartitionConfig, key,
                   source: str) -> Generator:
        """Pay the latency of a page fetch decided by _claim_source."""
        if source == LEVEL_NVEM_RESIDENT:
            yield from self._sync_nvem(tx, "read")
            self.metrics.record_io("nvem_read")
            return LEVEL_NVEM_RESIDENT
        if source == LEVEL_NVEM_CACHE:
            yield from self._sync_nvem(tx, "read")
            self.metrics.record_io("nvem_cache_read")
            return LEVEL_NVEM_CACHE

        # Read from the partition's home disk unit.
        pidx = key[0]
        if part.access_mode is AccessMode.SYNC:
            yield from self._sync_unit_loss_wait(part, key)
            result = yield from self.cpu.execute_with_sync_access(
                tx, self.cm.instr_io,
                self.storage.read_page(pidx, part.name, key[1]),
            )
        else:
            burst = self.cpu.execute_event(tx, self.cm.instr_io,
                                           exponential=False)
            if burst is not None:
                yield burst
            io_start = self.env.now
            result = yield from self.storage.read_page(
                pidx, part.name, key[1]
            )
            tx.wait_async_io += self.env.now - io_start
        self.metrics.record_io("db_read")
        return _DEVICE_LEVELS.get(result.level, result.level)

    # ------------------------------------------------------------------
    # Replacement
    # ------------------------------------------------------------------
    def _make_room(self, tx: Transaction, exclude_key=None) -> Generator:
        """Ensure at least one free main-memory frame.

        Victims under eviction remain in the buffer until their
        write-back/migration completes, so concurrent misses each start
        their own eviction — which is exactly the paper's "every buffer
        miss resulted in an additional I/O to write back the page to be
        replaced" behaviour.
        """
        while len(self.mm) >= self.mm.capacity:
            progressed = yield from self._evict_one(tx, exclude_key)
            if not progressed:
                self.eviction_stalls += 1
                yield self.env.timeout(1e-5)

    def _evict_one(self, tx: Transaction, exclude_key=None) -> Generator:
        """Evict the LRU unfixed frame, migrating/writing as configured."""
        victim = self.mm.victim(
            lambda e: e.fix_count == 0 and e.key not in self._evicting
            and e.key != exclude_key
        )
        if victim is None:
            return False
        key = victim.key
        self._evicting.add(key)
        try:
            part = self.partitions[key[0]]
            was_dirty = victim.dirty
            if was_dirty:
                yield from self._write_back(tx, key, part,
                                            replacement=True)
                # A concurrent writer may have re-dirtied the page during
                # the write-back; then the eviction is abandoned.
                if victim.dirty:
                    return True
            elif self._migrates_to_nvem(part, dirty=False):
                yield from self._nvem_insert(tx, key, dirty=False)
            if key in self.mm:
                current = self.mm.peek(key)
                if current is victim and victim.fix_count == 0:
                    self.mm.remove(key)
            return True
        finally:
            self._evicting.discard(key)

    def _migrates_to_nvem(self, part: PartitionConfig, dirty: bool) -> bool:
        if self.nvem_cache is None:
            return False
        return _MIGRATES[part.nvem_caching](dirty)

    # ------------------------------------------------------------------
    # Write paths
    # ------------------------------------------------------------------
    def _write_back(self, tx: Optional[Transaction], key,
                    part: PartitionConfig,
                    replacement: bool) -> Generator:
        """Persist a modified page (replacement write-back or FORCE).

        The main-memory entry (if any) is marked clean *before* the I/O
        starts: it represents the state being persisted.  Routing
        follows Fig. 3.2: NVEM-resident partition -> NVEM write; NVEM
        caching -> migrate into the NVEM cache plus an immediate
        asynchronous disk write; NVEM write buffer -> absorb if a slot
        is free; otherwise a write I/O against the partition's unit
        (whose own cache, if any, applies its policy).
        """
        entry = self.mm.peek(key)
        if entry is not None:
            entry.dirty = False
        if self.recovery_tracker is not None:
            # The DPT mirrors the volatile dirty bits: the write-back to
            # a non-volatile destination starts here, and a page
            # re-dirtied meanwhile re-enters through note_dirty.
            self.recovery_tracker.note_clean(key)

        if self.storage.is_nvem_resident(part.name):
            if self.storage.media_tracker is not None:
                self.storage.media_tracker.note_write(NVEM, key)
            yield from self._sync_nvem(tx, "write")
            self.metrics.record_io("nvem_write")
            return

        if self._migrates_to_nvem(part, dirty=True):
            yield from self._nvem_insert(tx, key, dirty=True)
            return

        if part.nvem_write_buffer and \
                self._wb_pending < self.cm.nvem_write_buffer_size:
            self._wb_pending += 1
            yield from self._sync_nvem(tx, "write")
            self.metrics.record_io("db_write_buffered")
            self.env.process(self._async_disk_write(key, part,
                                                    wb_slot=True))
            return

        # Plain write I/O against the partition's disk unit.
        if self.cm.async_replacement and replacement:
            # Extension (§4.3): a more sophisticated buffer manager
            # writes replacement victims asynchronously.
            self.metrics.record_io("db_write_async")
            self.env.process(self._async_disk_write(key, part,
                                                    wb_slot=False))
            return
        yield from self._unit_write(tx, key, part)

    def _unit_write(self, tx: Optional[Transaction], key,
                    part: PartitionConfig) -> Generator:
        pidx = key[0]
        if part.access_mode is AccessMode.SYNC:
            yield from self._sync_unit_loss_wait(part, key)
            result = yield from self.cpu.execute_with_sync_access(
                tx, self.cm.instr_io,
                self.storage.write_page(pidx, part.name, key[1]),
            )
        else:
            burst = self.cpu.execute_event(tx, self.cm.instr_io,
                                           exponential=False)
            if burst is not None:
                yield burst
            io_start = self.env.now
            result = yield from self.storage.write_page(
                pidx, part.name, key[1]
            )
            if tx is not None:
                tx.wait_async_io += self.env.now - io_start
        if result.level == "disk_cache":
            self.metrics.record_io("db_write_absorbed")
        else:
            self.metrics.record_io("db_write_sync")

    def _async_disk_write(self, key, part: PartitionConfig,
                          wb_slot: bool, nvem_entry=None) -> Generator:
        """Background disk update for a page absorbed by NVEM.

        NVEM-to-disk transfers are host-initiated (§2: "all data
        transfers between ES and disk must go through main memory"), so
        the I/O overhead is charged to a CPU, but to no transaction.
        """
        burst = self.cpu.execute_event(None, self.cm.instr_io,
                                       exponential=False)
        if burst is not None:
            yield burst
        yield from self.storage.write_page(key[0], part.name, key[1])
        self.metrics.record_io("db_write_async")
        if wb_slot:
            self._wb_pending -= 1
        if nvem_entry is not None and self.nvem_cache is not None:
            current = self.nvem_cache.peek(key)
            if current is nvem_entry:
                nvem_entry.dirty = False
                nvem_entry.pending_write = None

    # ------------------------------------------------------------------
    # NVEM cache management
    # ------------------------------------------------------------------
    def _nvem_insert(self, tx: Optional[Transaction], key,
                     dirty: bool) -> Generator:
        """Migrate a page into the NVEM cache (one NVEM page transfer).

        A modified page entering the cache immediately starts its
        asynchronous disk write (§3.2), unless the deferred-propagation
        extension is enabled — then dirty pages are destaged only when
        replaced from NVEM, at the replacer's expense.
        """
        cache = self.nvem_cache
        part = self.partitions[key[0]]

        # Make room.  The loop may yield (waiting for a disk update, or
        # destaging a deferred page); afterwards a concurrent migration
        # may have inserted this very key — re-check each iteration.
        while True:
            existing = cache.get(key)
            if existing is not None:
                if dirty and not existing.dirty:
                    existing.dirty = True
                    if not self.cm.deferred_nvem_propagation:
                        existing.pending_write = self.env.process(
                            self._async_disk_write(key, part,
                                                   wb_slot=False,
                                                   nvem_entry=existing)
                        )
                yield from self._sync_nvem(tx, "migrate")
                self.metrics.record_io("nvem_cache_write")
                return
            if not cache.is_full:
                break
            victim = cache.victim(lambda e: not e.dirty)
            if victim is not None:
                cache.remove(victim.key)
                continue
            # Everything is dirty.
            victim = cache.victim()
            if victim.pending_write is not None:
                # Wait for the oldest outstanding disk update.
                wait_start = self.env.now
                yield victim.pending_write
                if tx is not None:
                    tx.wait_async_io += self.env.now - wait_start
                continue
            # Deferred propagation: the replacer reads the page from
            # NVEM and writes it to disk synchronously (§3.2's noted
            # "extra overhead").
            vpart = self.partitions[victim.key[0]]
            yield from self._sync_nvem(tx, "read")
            yield from self._unit_write(tx, victim.key, vpart)
            victim.dirty = False
            if victim.key in cache:
                cache.remove(victim.key)

        # Slot reservation (insert) happens before the transfer time is
        # paid, so concurrent migrations cannot oversubscribe frames.
        entry = cache.insert(key, dirty=dirty)
        if dirty and not self.cm.deferred_nvem_propagation:
            entry.pending_write = self.env.process(
                self._async_disk_write(key, part, wb_slot=False,
                                       nvem_entry=entry)
            )
        yield from self._sync_nvem(tx, "migrate")
        self.metrics.record_io("nvem_cache_write")

    # ------------------------------------------------------------------
    # Commit processing (phase 1 of §3.2's two-phase commit)
    # ------------------------------------------------------------------
    def commit(self, tx: Transaction) -> Generator:
        """Write log data and, under FORCE, force modified pages."""
        yield from self.write_log(tx)
        if self.cm.update_strategy is UpdateStrategy.FORCE:
            for key in sorted(tx.modified_pages):
                entry = self.mm.peek(key)
                if entry is None:
                    continue  # already written back at replacement
                # Forced regardless of the dirty flag: per-transaction
                # FORCE does not coordinate across transactions, so a
                # page shared with a concurrent committer (the HISTORY
                # tail) is written by every commit — footnote 7's
                # "three write I/Os to force out the modifications".
                part = self.partitions[key[0]]
                yield from self._write_back(tx, key, part,
                                            replacement=False)

    # ------------------------------------------------------------------
    # Logging
    # ------------------------------------------------------------------
    def write_log(self, tx: Transaction) -> Generator:
        """One log page per update transaction (§3.2)."""
        if not self.cm.logging or not tx.is_update:
            return
        if self.cm.group_commit_size > 1:
            yield from self._group_commit_join(tx)
            return
        yield from self._log_write_once(tx)

    def _log_write_once(self, tx: Optional[Transaction]) -> Generator:
        """Write one log page; returns its page number (the LSN).

        With dual-copy mirroring both NVEM copies are forced
        sequentially before the commit proceeds — the second force *is*
        the commit-latency penalty the ``ablation_mirroring`` experiment
        measures.  A lost copy is skipped (the survivor carries the
        log); losing every copy is unrecoverable.
        """
        page_no = self.storage.next_log_page()
        # "log.force" spans carry the io kind as attrs, so attribution
        # can split forces by placement (the §4 NVEM-vs-disk gap).
        traced = (self.tracer is not None and tx is not None
                  and tx.traced)
        t0 = self.env.now if traced else 0.0
        if self.storage.log_on_nvem:
            state = self.storage.media_state
            if not self._log_mirror and (
                    state is None or not state.lost_log_copies):
                yield from self.cpu.execute_with_sync_access(
                    tx, self.cm.instr_nvem,
                    self.storage.nvem_device.access("log"),
                )
                self.metrics.record_io("log_nvem")
                if traced:
                    self.tracer.span("log.force", tx.tx_id, t0,
                                     self.env.now, "log_nvem")
                return page_no
            lost = state.lost_log_copies if state is not None else ()
            wrote = False
            for copy in ((0, 1) if self._log_mirror else (0,)):
                if copy in lost:
                    continue
                if traced:
                    t0 = self.env.now
                yield from self.cpu.execute_with_sync_access(
                    tx, self.cm.instr_nvem,
                    self.storage.nvem_device.access("log"),
                )
                kind = "log_nvem" if copy == 0 else "log_nvem_mirror"
                self.metrics.record_io(kind)
                if traced:
                    self.tracer.span("log.force", tx.tx_id, t0,
                                     self.env.now, kind)
                wrote = True
            if not wrote:
                from repro.storage.faults import MediaUnrecoverableError
                raise MediaUnrecoverableError(
                    "every copy of the NVEM log is lost")
            return page_no
        if self.config.log.nvem_write_buffer and \
                self._wb_pending < self.cm.nvem_write_buffer_size:
            self._wb_pending += 1
            yield from self.cpu.execute_with_sync_access(
                tx, self.cm.instr_nvem,
                self.storage.nvem_device.access("log"),
            )
            self.metrics.record_io("log_buffered")
            if traced:
                self.tracer.span("log.force", tx.tx_id, t0,
                                 self.env.now, "log_buffered")
            self.env.process(self._async_log_write(page_no))
            return page_no
        burst = self.cpu.execute_event(tx, self.cm.instr_io,
                                       exponential=False)
        if burst is not None:
            yield burst
        io_start = self.env.now
        result = yield from self.storage.write_log_to_unit(page_no)
        if tx is not None:
            tx.wait_async_io += self.env.now - io_start
        if result.level == "disk_cache":
            kind = "log_absorbed"
        elif result.level in (LEVEL_SSD, LEVEL_FLASH, LEVEL_BATTERY_DRAM):
            kind = f"log_{result.level}"
        else:
            kind = "log_disk"
        self.metrics.record_io(kind)
        if traced:
            self.tracer.span("log.force", tx.tx_id, t0, self.env.now,
                             kind)
        return page_no

    def write_checkpoint_record(self) -> Generator:
        """One checkpoint record through the configured log path.

        Used by the fuzzy checkpointer (:mod:`repro.recovery`); returns
        the record's log page number — the LSN a restart scans from.
        """
        page_no = yield from self._log_write_once(None)
        return page_no

    def force_log_record(self, tx: Optional[Transaction]) -> Generator:
        """Force one log record for ``tx`` through the configured log
        path, returning its page number.

        The two-phase commit protocol (:mod:`repro.cluster.twopc`) pays
        this once per phase: the participant's prepare record and the
        coordinator's decision record must both hit non-volatile
        storage before the protocol advances, so the log device's
        latency (NVEM vs disk) enters commit time once per phase —
        exactly the placement effect of the paper's §4.
        """
        page_no = yield from self._log_write_once(tx)
        return page_no

    def _async_log_write(self, page_no: int) -> Generator:
        """Background flush of a log page absorbed by the NVEM buffer."""
        burst = self.cpu.execute_event(None, self.cm.instr_io,
                                       exponential=False)
        if burst is not None:
            yield burst
        yield from self.storage.write_log_to_unit(page_no)
        self.metrics.record_io("log_async")
        self._wb_pending -= 1

    # -- group commit (extension) -----------------------------------------
    def _group_commit_join(self, tx: Transaction) -> Generator:
        batch = self._group
        if batch is None:
            batch = self._group = _GroupCommitBatch(self.env)
            batch.flush_proc = self.env.process(
                self._group_commit_flush(batch))
        batch.members += 1
        if batch.members >= self.cm.group_commit_size and \
                not batch.flush_event.triggered:
            batch.flush_event.succeed()
        wait_start = self.env.now
        yield batch.done_event
        tx.wait_async_io += self.env.now - wait_start

    def _group_commit_flush(self, batch: _GroupCommitBatch) -> Generator:
        try:
            timeout = self.env.timeout(self.cm.group_commit_timeout)
            yield self.env.any_of([batch.flush_event, timeout])
            if self._group is batch:
                self._group = None
            self.metrics.record_io("group_commits")
            yield from self._log_write_once(None)
        except Interrupt:
            # CM crash (crash_reset): the batch died with its members —
            # no log write happens on behalf of aborted transactions.
            return
        batch.done_event.succeed()

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def crash_reset(self) -> None:
        """Discard the volatile state a CM crash destroys.

        The main-memory buffer and any in-progress group-commit batch
        are lost; the NVEM cache, the NVEM write buffer and the disk
        caches are non-volatile and survive, as do the background
        destage processes draining them (their work targets
        non-volatile state).  Callers must have interrupted the
        in-flight transactions first — their teardown only touches
        entry objects it already holds, never the buffer map.
        """
        self.mm.clear()
        self._evicting.clear()
        group = self._group
        if group is not None:
            # Kill the batch's pending flush: its members all aborted
            # at the crash, so no log write may run on their behalf.
            if group.flush_proc is not None and \
                    not group.flush_proc.triggered:
                group.flush_proc.interrupt("crash")
            self._group = None

    def drop_volatile_caches(self):
        """Clear every *volatile* disk-controller cache and return the
        database page keys they held, in deterministic order.

        Called at a crash when ``RecoveryConfig.volatile_cache_loss`` is
        on: a volatile controller cache dies with the power, so its read
        copies are gone (post-restart reads miss) and its pages
        conservatively re-enter the redo set.  Log pages (partition
        index -1) have no redo entry and are skipped.
        """
        keys = []
        for unit in self.storage.units.values():
            cache = unit.cache
            if cache is None or cache.nonvolatile:
                continue
            keys.extend(k for k in cache.lru.keys() if k[0] >= 0)
            cache.lru.clear()
        return sorted(keys)

    # ------------------------------------------------------------------
    # Warm start
    # ------------------------------------------------------------------
    def prewarm_reference(self, partition_index: int, page_no: int,
                          is_write: bool) -> None:
        """Replay one reference through the cache levels without timing.

        The paper reports steady-state measurements; reaching LRU steady
        state for a 2000-frame buffer over a 5-million-page ACCOUNT file
        by simulation alone wastes most of a run on warm-up.  Prewarming
        replays a representative reference stream through the *state* of
        every cache level — main memory, NVEM cache and the disk-unit
        caches — with no simulated time, no I/O and immediate "destage"
        of displaced dirty pages.  Measurement then starts from realistic
        buffer contents.
        """
        if self._part_mem_resident[partition_index]:
            return
        # Under FORCE, resident pages are clean at steady state (forced
        # at every commit); only NOFORCE leaves modifications in place.
        is_write = is_write and self._noforce
        key = (partition_index, page_no)
        entry = self.mm.get(key)
        if entry is not None:
            if is_write and not entry.dirty:
                entry.dirty = True
            return
        part = self.partitions[partition_index]
        nvem_resident = self.storage.is_nvem_resident(part.name)
        if not nvem_resident:
            if self.nvem_cache is not None and \
                    part.nvem_caching is not NVEMCachingMode.NONE and \
                    key in self.nvem_cache:
                self.nvem_cache.get(key)  # touch
                if self.cm.update_strategy is UpdateStrategy.NOFORCE:
                    self.nvem_cache.remove(key)
            else:
                unit = self.storage.unit_of(part.name)
                if unit is not None and unit.cache is not None:
                    decision = unit.cache.on_read(key)
                    if not decision.hit:
                        unit.cache.on_read_fill(key)
        while len(self.mm) >= self.mm.capacity:
            victim = self.mm.victim()
            self._prewarm_displace(victim)
            self.mm.remove(victim.key)
        self.mm.insert(key, dirty=is_write)

    def _prewarm_displace(self, victim) -> None:
        """Model the destination of a page displaced during prewarm."""
        vpart = self.partitions[victim.key[0]]
        if self.storage.is_nvem_resident(vpart.name):
            return
        if self._migrates_to_nvem(vpart, dirty=victim.dirty):
            self._prewarm_nvem_insert(victim.key)
            return
        if victim.dirty:
            unit = self.storage.unit_of(vpart.name)
            if unit is not None and unit.cache is not None:
                decision = unit.cache.on_write(victim.key)
                # Treat the disk update as already complete.
                unit.cache.on_disk_write_complete(decision.entry)

    def _prewarm_nvem_insert(self, key) -> None:
        cache = self.nvem_cache
        if key in cache:
            cache.get(key)
            return
        while cache.is_full:
            victim = cache.victim()
            cache.remove(victim.key)
        cache.insert(key, dirty=False)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def mm_occupancy(self) -> int:
        return len(self.mm)

    def nvem_occupancy(self) -> int:
        return len(self.nvem_cache) if self.nvem_cache is not None else 0

    def write_buffer_pending(self) -> int:
        return self._wb_pending

    def check_invariants(self) -> List[str]:
        """Sanity checks used by tests; returns violation descriptions."""
        problems: List[str] = []
        if len(self.mm) > self.mm.capacity:
            problems.append("main memory buffer over capacity")
        if self.nvem_cache is not None:
            if len(self.nvem_cache) > self.nvem_cache.capacity:
                problems.append("NVEM cache over capacity")
            if self.cm.update_strategy is UpdateStrategy.NOFORCE:
                mm_keys = set(self.mm.keys())
                overlap = mm_keys & set(self.nvem_cache.keys())
                # Pages mid-eviction may transiently exist in both.
                overlap -= self._evicting
                if overlap:
                    problems.append(
                        f"NOFORCE single-copy violated for {sorted(overlap)[:5]}"
                    )
        if self._wb_pending < 0:
            problems.append("negative write-buffer occupancy")
        return problems
