"""CPU servers with the synchronous-access interface (§3.2).

CPU requests are served by ``NumCPU`` identical processors.  Service
demands are instruction counts converted via the MIPS rate; BOT/OR/EOT
demands are exponentially distributed over their configured means, I/O
and NVEM overheads are fixed.

The paper required "a special CPU interface to keep the CPU busy until
after an access has been completed" for synchronous device accesses:
:meth:`CPUPool.execute_with_sync_access` acquires a CPU, spends the
instruction overhead, then *keeps the CPU occupied* while the device
access generator runs, exactly modelling an ES-style synchronous page
move where a process switch would cost more than the transfer.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.config import CMConfig
from repro.core.transaction import Transaction
from repro.sim import Environment, RandomStreams, Resource

__all__ = ["CPUPool"]


class CPUPool:
    """The computing module's processors.

    The execution primitives fuse "acquire + instruction timeout" into a
    single scheduled wake-up when the CPU grant is immediate (the
    resource layer's uncontended fast path): the burst then costs one
    heap event — the service timeout — and a zero-instruction burst on
    an idle CPU costs none at all.  Accounting stays exact either way:
    an immediately granted request reports ``wait_cpu == 0.0`` exactly,
    and ``service_cpu`` is charged only once the burst completed.
    """

    def __init__(self, env: Environment, streams: RandomStreams,
                 config: CMConfig):
        self.env = env
        self.config = config
        self._streams = streams
        self.cpus = Resource(env, config.num_cpus, name="cpu")

    # -- service-time draws --------------------------------------------------
    def _service_seconds(self, mean_instructions: float,
                         exponential: bool) -> float:
        if mean_instructions <= 0:
            return 0.0
        if exponential:
            instructions = self._streams.exponential(
                "cpu-service", mean_instructions
            )
        else:
            instructions = mean_instructions
        return self.config.cpu_seconds(instructions)

    # -- execution primitives ------------------------------------------------
    def execute(self, tx: Optional[Transaction], mean_instructions: float,
                exponential: bool = True) -> Generator:
        """Acquire a CPU, burn the instructions, release.

        Interrupt-safe: tearing down the executing process at any wait
        point withdraws or returns the CPU claim instead of leaking it.
        """
        service = self._service_seconds(mean_instructions, exponential)
        cpus = self.cpus
        request = cpus.request()
        if request.callbacks is None:
            # Immediate grant: the whole burst is one timeout (or none
            # for a zero-service draw); wait_cpu stays exactly 0.0.
            try:
                if service > 0:
                    yield self.env.timeout(service)
            except BaseException:
                cpus.cancel(request)
                raise
            if tx is not None:
                tx.service_cpu += service
            cpus.release(request)
            return
        queued_at = self.env.now
        try:
            yield request
            if tx is not None:
                tx.wait_cpu += self.env.now - queued_at
            if service > 0:
                yield self.env.timeout(service)
            if tx is not None:
                tx.service_cpu += service
        except BaseException:
            cpus.cancel(request)
            raise
        cpus.release(request)

    def execute_with_sync_access(self, tx: Optional[Transaction],
                                 mean_instructions: float,
                                 access: Generator,
                                 exponential: bool = False) -> Generator:
        """Instruction overhead plus a device access with the CPU held.

        Used for NVEM accesses (and any partition configured with
        ``AccessMode.SYNC``): the CPU is not released during the page
        transfer, so device queueing directly consumes CPU capacity.
        """
        service = self._service_seconds(mean_instructions, exponential)
        cpus = self.cpus
        request = cpus.request()
        if request.callbacks is None:
            # Immediate grant: skip the grant wait, keep the CPU held
            # through the device access exactly as in the general path.
            try:
                if service > 0:
                    yield self.env.timeout(service)
                if tx is not None:
                    tx.service_cpu += service
                access_start = self.env.now
                result = yield from access
                if tx is not None:
                    tx.wait_nvem += self.env.now - access_start
            except BaseException:
                cpus.cancel(request)
                raise
            cpus.release(request)
            return result
        queued_at = self.env.now
        try:
            yield request
            if tx is not None:
                tx.wait_cpu += self.env.now - queued_at
            if service > 0:
                yield self.env.timeout(service)
            if tx is not None:
                tx.service_cpu += service
            access_start = self.env.now
            result = yield from access
            if tx is not None:
                tx.wait_nvem += self.env.now - access_start
        except BaseException:
            cpus.cancel(request)
            raise
        cpus.release(request)
        return result

    # -- introspection ------------------------------------------------------
    @property
    def utilization(self) -> float:
        return self.cpus.monitor.utilization(self.cpus.capacity)

    def reset_stats(self) -> None:
        self.cpus.monitor.reset()
