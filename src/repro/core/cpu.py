"""CPU servers with the synchronous-access interface (§3.2).

CPU requests are served by ``NumCPU`` identical processors.  Service
demands are instruction counts converted via the MIPS rate; BOT/OR/EOT
demands are exponentially distributed over their configured means, I/O
and NVEM overheads are fixed.

The paper required "a special CPU interface to keep the CPU busy until
after an access has been completed" for synchronous device accesses:
:meth:`CPUPool.execute_with_sync_access` acquires a CPU, spends the
instruction overhead, then *keeps the CPU occupied* while the device
access generator runs, exactly modelling an ES-style synchronous page
move where a process switch would cost more than the transfer.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.config import CMConfig
from repro.core.transaction import Transaction
from repro.sim import Environment, RandomStreams, Resource
from repro.sim.core import _PENDING, _TRIGGERED, Event, Timeout

__all__ = ["CPUPool"]


class _CPUBurst(Timeout):
    """A fused CPU burst: grant wait + instruction timeout + release as
    one kernel event (the CPU analogue of the resource layer's
    ``_ServiceEvent``; see that class for the lifecycle contract).

    Unlike generic resource service, the instruction draw happens at
    *creation* (before the request), matching the order the generator
    version established; accounting stays exact — ``wait_cpu`` is
    charged at grant dispatch, ``service_cpu`` only once the burst
    completed, neither on interrupt.
    """

    __slots__ = ("_cpus", "_request", "_tx", "_service", "_queued_at")

    def _on_grant(self, request) -> None:
        """CPU-grant callback: charge the queueing wait and schedule
        the burst completion (no-op if the claim was withdrawn)."""
        if request.cancelled:
            return
        env = self.env
        tx = self._tx
        if tx is not None:
            tx.wait_cpu += env._now - self._queued_at
        self._state = _TRIGGERED
        env._insert(env._now + self._service, self)

    def _finish(self, event: Event) -> None:
        """Own completion callback (runs before the waiter's resume)."""
        tx = self._tx
        if tx is not None:
            tx.service_cpu += self._service
        self._cpus.release(self._request)

    def _finalize(self, carrier: Event) -> None:
        """Interrupt-delivery finalizer: give back the held CPU."""
        self._cpus.cancel(self._request)

    def _abandoned(self):
        if self._state == _PENDING:
            # Still queued for a CPU: withdraw the claim.
            request = self._request
            callbacks = request.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(self._on_grant)
                except ValueError:  # pragma: no cover - already granted
                    pass
            self._cpus.cancel(request)
            Event._abandoned(request)
            return None
        # Burst in flight: drop the completion event and return the CPU
        # at interrupt delivery (the generator version's ``except``
        # clause timing); service_cpu is deliberately not charged.
        try:
            self.callbacks.remove(self._finish)
        except ValueError:  # pragma: no cover - defensive
            pass
        Event._abandoned(self)
        return self._finalize


class CPUPool:
    """The computing module's processors.

    The execution primitives fuse "acquire + instruction timeout" into a
    single scheduled wake-up when the CPU grant is immediate (the
    resource layer's uncontended fast path): the burst then costs one
    heap event — the service timeout — and a zero-instruction burst on
    an idle CPU costs none at all.  Accounting stays exact either way:
    an immediately granted request reports ``wait_cpu == 0.0`` exactly,
    and ``service_cpu`` is charged only once the burst completed.
    """

    def __init__(self, env: Environment, streams: RandomStreams,
                 config: CMConfig):
        self.env = env
        self.config = config
        self._streams = streams
        self.cpus = Resource(env, config.num_cpus, name="cpu")

    # -- service-time draws --------------------------------------------------
    def _service_seconds(self, mean_instructions: float,
                         exponential: bool) -> float:
        if mean_instructions <= 0:
            return 0.0
        if exponential:
            instructions = self._streams.exponential(
                "cpu-service", mean_instructions
            )
        else:
            instructions = mean_instructions
        return self.config.cpu_seconds(instructions)

    # -- execution primitives ------------------------------------------------
    def execute_event(self, tx: Optional[Transaction],
                      mean_instructions: float,
                      exponential: bool = True) -> Optional[Event]:
        """Acquire a CPU, burn the instructions, release — fused into a
        single yieldable event (see :class:`_CPUBurst`).

        Returns None when the burst completes synchronously (immediate
        grant, zero-service draw); otherwise the caller must yield the
        returned event.  Interrupt-safe: tearing down the waiting
        process withdraws or returns the CPU claim instead of leaking
        it.
        """
        service = self._service_seconds(mean_instructions, exponential)
        env = self.env
        cpus = self.cpus
        request = cpus.request()
        if request.callbacks is None:
            # Immediate grant; wait_cpu stays exactly 0.0.
            if service <= 0:
                cpus.release(request)
                return None
            ev = _CPUBurst.__new__(_CPUBurst)
            ev.env = env
            ev._ok = True
            ev._value = None
            ev._defused = False
            ev.delay = service
            ev._cpus = cpus
            ev._request = request
            ev._tx = tx
            ev._service = service
            ev._queued_at = 0.0
            ev._state = _TRIGGERED
            ev.callbacks = [ev._finish]
            if env._pending == 0 and env._solo is None and env._solo_on:
                env._solo = ev
                env._solo_at = env._now + service
            else:
                env._insert(env._now + service, ev)
            return ev
        queued_at = env._now
        if service <= 0:
            # Zero-service burst behind a queue: piggyback on the grant
            # event itself — charge the wait and release at grant
            # dispatch, just before the waiter's resume runs.
            def _zero_finish(req, tx=tx, cpus=cpus, queued_at=queued_at):
                if req.cancelled:
                    return
                if tx is not None:
                    tx.wait_cpu += req.env._now - queued_at
                cpus.release(req)

            request.callbacks.append(_zero_finish)
            return request
        ev = _CPUBurst.__new__(_CPUBurst)
        ev.env = env
        ev._ok = True
        ev._value = None
        ev._defused = False
        ev.delay = service
        ev._cpus = cpus
        ev._request = request
        ev._tx = tx
        ev._service = service
        ev._queued_at = queued_at
        ev._state = _PENDING
        ev.callbacks = [ev._finish]
        request.callbacks.append(ev._on_grant)
        return ev

    def execute(self, tx: Optional[Transaction], mean_instructions: float,
                exponential: bool = True) -> Generator:
        """Generator form of :meth:`execute_event` (compatibility shim
        for ``yield from`` call sites; hot paths yield the event)."""
        ev = self.execute_event(tx, mean_instructions, exponential)
        if ev is not None:
            yield ev

    def execute_with_sync_access(self, tx: Optional[Transaction],
                                 mean_instructions: float,
                                 access: Generator,
                                 exponential: bool = False) -> Generator:
        """Instruction overhead plus a device access with the CPU held.

        Used for NVEM accesses (and any partition configured with
        ``AccessMode.SYNC``): the CPU is not released during the page
        transfer, so device queueing directly consumes CPU capacity.
        """
        service = self._service_seconds(mean_instructions, exponential)
        cpus = self.cpus
        request = cpus.request()
        if request.callbacks is None:
            # Immediate grant: skip the grant wait, keep the CPU held
            # through the device access exactly as in the general path.
            try:
                if service > 0:
                    yield self.env.timeout(service)
                if tx is not None:
                    tx.service_cpu += service
                access_start = self.env.now
                result = yield from access
                if tx is not None:
                    tx.wait_nvem += self.env.now - access_start
            except BaseException:
                cpus.cancel(request)
                raise
            cpus.release(request)
            return result
        queued_at = self.env.now
        try:
            yield request
            if tx is not None:
                tx.wait_cpu += self.env.now - queued_at
            if service > 0:
                yield self.env.timeout(service)
            if tx is not None:
                tx.service_cpu += service
            access_start = self.env.now
            result = yield from access
            if tx is not None:
                tx.wait_nvem += self.env.now - access_start
        except BaseException:
            cpus.cancel(request)
            raise
        cpus.release(request)
        return result

    # -- introspection ------------------------------------------------------
    @property
    def utilization(self) -> float:
        return self.cpus.monitor.utilization(self.cpus.capacity)

    def reset_stats(self) -> None:
        self.cpus.monitor.reset()
