"""Canonical content fingerprints for configurations and workloads.

The incremental experiment cache (:mod:`repro.experiments.store`) keys
stored results by *exactly the inputs a simulation point depends on*:
the :class:`~repro.core.config.SystemConfig`, the workload, the run
window (warmup/duration), the per-point seed, and a code-version salt.
This module provides the canonical serialization those keys are built
from:

* :func:`canonical_data` — a recursive walk turning dataclasses, enums,
  mappings, sequences and workload objects into plain JSON-compatible
  data with a stable shape.  Objects may expose ``fingerprint_data()``
  to declare which of their attributes are simulation inputs (mutable
  generation counters must be excluded, or a half-used workload would
  fingerprint differently from a fresh one).
* :func:`canonical_json` / :func:`fingerprint` — normalized JSON
  (sorted keys, minimal separators) and its SHA-256.
* :func:`code_version_salt` — a digest over the source files of every
  package that determines a simulation trajectory (``sim``, ``core``,
  ``storage``, ``workload``, ``recovery``, ``distributed``).  Any edit
  to simulation code therefore invalidates all cached points, while
  presentation-layer edits (CLI, exports, charts) do not.
* :func:`point_fingerprint` — the composite key of one sweep point.

Determinism contract: the fingerprint never uses ``hash()``, ``id()``
or ``repr()`` of objects, so it is stable across processes,
interpreter restarts and platforms (floats serialize via JSON's
shortest round-trip repr).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from enum import Enum
from pathlib import Path
from typing import Any, Mapping, Optional

__all__ = [
    "FingerprintError",
    "POINT_SCHEMA_VERSION",
    "canonical_data",
    "canonical_json",
    "code_version_salt",
    "fingerprint",
    "point_fingerprint",
]

#: Bump when the *meaning* of a point fingerprint changes (fields added
#: to the composite key, canonicalization rules altered): old cache
#: entries must not be served for keys built under different rules.
POINT_SCHEMA_VERSION = 1

#: Subpackages whose source determines the simulated trajectory of a
#: point.  Presentation layers (cli, experiments, analysis, bench) are
#: deliberately absent: a point's result is fully determined by
#: (config, workload, warmup, duration, seed) plus this code.
_SALT_PACKAGES = ("sim", "core", "storage", "workload", "recovery",
                  "distributed", "cluster", "trace")


class FingerprintError(TypeError):
    """An object cannot be canonically fingerprinted.

    Raised for values with no stable data representation (open files,
    callables, foreign extension objects without ``fingerprint_data``).
    The experiment runner treats points containing such objects as
    uncacheable and always recomputes them.
    """


def _class_key(obj: Any) -> str:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def canonical_data(obj: Any) -> Any:
    """Recursively normalize ``obj`` into JSON-compatible plain data.

    The walk accepts primitives, enums, dataclasses, mappings with
    string keys, sequences, sets, numpy scalars/arrays and arbitrary
    objects that either expose ``fingerprint_data()`` or carry only
    public, walkable attributes (underscore-prefixed attributes are
    skipped: by convention they hold derived or mutable run state).
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, Enum):
        return {"__enum__": _class_key(obj), "value": canonical_data(obj.value)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        data = {
            f.name: canonical_data(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": _class_key(obj), "fields": data}
    if isinstance(obj, Mapping):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, (str, int, float, bool)):
                raise FingerprintError(
                    f"cannot fingerprint mapping key of type {type(key)!r}"
                )
            skey = key if isinstance(key, str) else json.dumps(key)
            if skey in out:
                raise FingerprintError(
                    f"mapping keys collide after normalization: {skey!r}"
                )
            out[skey] = canonical_data(value)
        return out
    if isinstance(obj, (list, tuple)):
        return [canonical_data(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(
            (canonical_data(v) for v in obj),
            key=lambda v: json.dumps(v, sort_keys=True),
        )
    if isinstance(obj, (bytes, bytearray)):
        return {"__bytes_sha256__": hashlib.sha256(bytes(obj)).hexdigest()}
    module = type(obj).__module__ or ""
    if module.split(".")[0] == "numpy":
        item = getattr(obj, "item", None)
        if item is not None and getattr(obj, "shape", None) == ():
            return canonical_data(item())
        tobytes = getattr(obj, "tobytes", None)
        if tobytes is not None:
            return {
                "__ndarray__": {
                    "dtype": str(obj.dtype),
                    "shape": list(obj.shape),
                    "sha256": hashlib.sha256(tobytes()).hexdigest(),
                }
            }
    data_fn = getattr(obj, "fingerprint_data", None)
    if callable(data_fn):
        return {"__class__": _class_key(obj),
                "data": canonical_data(data_fn())}
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None:
        public = {k: v for k, v in attrs.items() if not k.startswith("_")}
        for value in public.values():
            if callable(value):
                raise FingerprintError(
                    f"{_class_key(obj)} holds a callable attribute; "
                    "define fingerprint_data() to make it cacheable"
                )
        return {"__class__": _class_key(obj),
                "attrs": {k: canonical_data(v)
                          for k, v in sorted(public.items())}}
    raise FingerprintError(
        f"cannot fingerprint object of type {_class_key(obj)}; "
        "define a fingerprint_data() method"
    )


def canonical_json(obj: Any) -> str:
    """Normalized JSON of :func:`canonical_data`: sorted keys, minimal
    separators — the byte string every fingerprint hashes."""
    return json.dumps(canonical_data(obj), sort_keys=True,
                      separators=(",", ":"))


def fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


_SALT_CACHE: Optional[str] = None


def code_version_salt() -> str:
    """Digest over the simulation-determining source of this checkout.

    Computed once per process.  ``REPRO_CACHE_SALT`` overrides it (e.g.
    to share a cache across checkouts known to be trajectory-identical,
    or to force invalidation without touching code).
    """
    global _SALT_CACHE
    env = os.environ.get("REPRO_CACHE_SALT")
    if env:
        return env
    if _SALT_CACHE is not None:
        return _SALT_CACHE
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for package in _SALT_PACKAGES:
        base = root / package
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
    _SALT_CACHE = digest.hexdigest()
    return _SALT_CACHE


def point_fingerprint(config: Any, workload: Any, warmup: float,
                      duration: float, seed: int) -> str:
    """The cache key of one sweep point.

    Exactly the arguments of one simulation run — note the sweep's
    presentation ``x`` value is *not* part of the key: two figures
    plotting the same (config, workload, seed) point against different
    axes share one cached result.
    """
    return fingerprint({
        "schema": POINT_SCHEMA_VERSION,
        "salt": code_version_salt(),
        "config": config,
        "workload": workload,
        "warmup": warmup,
        "duration": duration,
        "seed": seed,
    })
