"""Top-level wiring: SOURCE + CM + devices = a runnable system (Fig. 3.1).

:class:`TransactionSystem` instantiates every component of TPSIM's
central configuration from a :class:`~repro.core.config.SystemConfig`
and a workload (any object implementing the
:class:`~repro.workload.base.Workload` protocol), runs warm-up and
measurement phases, and produces a :class:`~repro.core.metrics.Results`
snapshot.

A saturation guard samples the TM input queue during measurement: an
open system driven beyond capacity grows its queue without bound; such
runs are marked ``saturated`` (the paper simply does not plot those
points, e.g. the single-log-disk curve in Fig. 4.1 ends near 200 TPS).
"""

from __future__ import annotations

from typing import Optional

from repro.core.bm import BufferManager
from repro.core.cc import LockManager
from repro.core.config import SystemConfig
from repro.core.cpu import CPUPool
from repro.core.metrics import MetricsCollector, Results
from repro.core.tm import TransactionManager
from repro.sim import Environment, RandomStreams
from repro.storage.hierarchy import StorageSubsystem

__all__ = ["TransactionSystem"]


class TransactionSystem:
    """One centrally organized transaction system (the paper's CM case)."""

    def __init__(self, config: SystemConfig, workload,
                 seed: Optional[int] = None,
                 victim_policy: str = "requester"):
        config.validate()
        self.config = config
        self.env = Environment()
        self.streams = RandomStreams(seed if seed is not None else config.seed)
        self.metrics = MetricsCollector(self.env)
        self.storage = StorageSubsystem(self.env, self.streams, config)
        self.cpu = CPUPool(self.env, self.streams, config.cm)
        self.locks = LockManager(self.env, self.metrics,
                                 victim_policy=victim_policy)
        self.bm = BufferManager(self.env, self.streams, config, self.cpu,
                                self.storage, self.metrics)
        self.tm = TransactionManager(self.env, config, self.cpu, self.locks,
                                     self.bm, self.metrics,
                                     streams=self.streams)
        self.recovery = None
        if config.recovery.enabled:
            # Imported lazily: repro.recovery builds on the core layer.
            from repro.recovery import RecoveryManager

            self.recovery = RecoveryManager(self)
        self.media = None
        if config.media.enabled:
            from repro.recovery.media import MediaManager

            self.media = MediaManager(self)
        self.tracer = None
        self.telemetry = None
        trace_cfg = config.trace
        if trace_cfg.enabled:
            # Imported lazily: repro.trace builds on the core layer.
            from repro.trace.tracer import Tracer

            self.tracer = Tracer(self.env, streams=self.streams,
                                 sample=trace_cfg.sample,
                                 max_spans=trace_cfg.max_spans)
            # Components hold the tracer directly; metrics.reset()
            # clears it at the warm-up boundary.
            self.tm.tracer = self.tracer
            self.locks.tracer = self.tracer
            self.bm.tracer = self.tracer
            self.metrics.tracer = self.tracer
        if trace_cfg.latency_detail:
            self.metrics.latency_detail = True
            self.metrics.slo_threshold = trace_cfg.slo_ms / 1000.0
        if trace_cfg.telemetry_interval > 0:
            from repro.trace.telemetry import TelemetrySampler

            self.telemetry = TelemetrySampler(
                self, trace_cfg.telemetry_interval,
                max_samples=trace_cfg.telemetry_max_samples)
            self.metrics.telemetry = self.telemetry
        self.workload = workload
        self._started = False

    # -- lifecycle ------------------------------------------------------
    def start_workload(self) -> None:
        if not self._started:
            prewarm = getattr(self.workload, "prewarm", None)
            if prewarm is not None:
                prewarm(self)
            if self.recovery is not None:
                self.recovery.start()
            if self.media is not None:
                self.media.start()
            if self.telemetry is not None:
                self.telemetry.start()
            self.workload.start(self)
            self._started = True

    def _reset_measurements(self) -> None:
        self.metrics.reset()
        self.cpu.reset_stats()
        self.storage.reset_stats()

    def run(self, warmup: float = 5.0, duration: float = 30.0,
            saturation_queue_limit: Optional[int] = None) -> Results:
        """Warm up, measure, and summarize.

        ``saturation_queue_limit`` caps the TM input queue; once the
        queue exceeds it the run is flagged saturated and measurement
        stops early (response times of a diverging open system are
        unbounded anyway).  Defaults to ``4 * MPL``.
        """
        if warmup < 0 or duration <= 0:
            raise ValueError("warmup must be >= 0 and duration > 0")
        if saturation_queue_limit is None:
            saturation_queue_limit = 4 * self.config.cm.mpl
        self.start_workload()
        if warmup > 0:
            self.env.run(until=self.env.now + warmup)
        self._reset_measurements()

        end_time = self.env.now + duration
        slices = 20
        slice_len = duration / slices
        for _ in range(slices):
            self.env.run(until=min(self.env.now + slice_len, end_time))
            queue = self.tm.input_queue_length
            self.metrics.note_input_queue(queue)
            if queue > saturation_queue_limit:
                self.metrics.saturated = True
                break
        return self.snapshot()

    def run_for_commits(self, commits: int, warmup_commits: int = 0,
                        max_time: float = 3600.0) -> Results:
        """Run until a number of committed transactions is reached.

        Useful for low arrival rates where a fixed time window would
        under-sample.  ``max_time`` bounds the simulated horizon.
        """
        self.start_workload()
        deadline = self.env.now + max_time
        if warmup_commits > 0:
            while self.metrics.committed < warmup_commits and \
                    self.env.now < deadline:
                self.env.run(until=self.env.now + 1.0)
        self._reset_measurements()
        while self.metrics.committed < commits and self.env.now < deadline:
            self.env.run(until=self.env.now + 1.0)
        return self.snapshot()

    def snapshot(self) -> Results:
        """Freeze current measurements into a Results record."""
        return self.metrics.finalize(
            cpu_utilization=self.cpu.utilization,
            device_utilization=self.storage.utilization_report(),
        )
