"""Concurrency control: strict two-phase locking with deadlock detection.

The paper (§3.2) uses strict 2PL with long read and write locks, a
deadlock check on every denied lock request, and aborts "the transaction
causing the deadlock" (the requester) to break the cycle.  Locking
granularity — none, page-level or object-level — is chosen per
partition; the transaction manager translates object references into
lock resource ids accordingly.

Implementation notes
--------------------
* Each transaction is a single process and therefore waits for at most
  one lock at a time; the waits-for graph is computed on the fly from
  the lock table during the cycle check.
* Lock conversions (S held, X requested) are granted immediately for a
  sole holder and otherwise wait at the *front* of the queue (standard
  conversion priority).
* As an extension beyond the paper, alternative victim policies are
  supported ("requester" — the paper's policy — and "youngest", which
  aborts the most recently started transaction in the cycle).  Waiting
  victims are woken with a DEADLOCK outcome.
"""

from __future__ import annotations

from collections import deque
from enum import Enum, IntEnum
from typing import Deque, Dict, Generator, List, Optional, Set, Tuple

from repro.core.metrics import MetricsCollector
from repro.core.transaction import Transaction
from repro.sim import Environment
from repro.sim.core import Event

__all__ = ["LockManager", "LockMode", "LockOutcome"]


class LockMode(IntEnum):
    """Lock modes; higher value = stronger."""

    S = 0
    X = 1


class LockOutcome(Enum):
    """Result of a lock request."""

    GRANTED = "granted"
    DEADLOCK = "deadlock"


class _Waiter:
    __slots__ = ("tx", "mode", "event", "is_conversion")

    def __init__(self, tx: Transaction, mode: LockMode, event: Event,
                 is_conversion: bool):
        self.tx = tx
        self.mode = mode
        self.event = event
        self.is_conversion = is_conversion


class _Lock:
    __slots__ = ("holders", "queue")

    def __init__(self):
        #: tx_id -> LockMode currently held.
        self.holders: Dict[int, LockMode] = {}
        self.queue: Deque[_Waiter] = deque()

    def compatible(self, mode: LockMode, exclude_tx: Optional[int] = None) -> bool:
        for tx_id, held in self.holders.items():
            if tx_id == exclude_tx:
                continue
            if mode is LockMode.X or held is LockMode.X:
                return False
        return True


class LockManager:
    """Lock table + waits-for deadlock detection."""

    def __init__(self, env: Environment, metrics: MetricsCollector,
                 victim_policy: str = "requester"):
        if victim_policy not in ("requester", "youngest"):
            raise ValueError(f"unknown victim policy {victim_policy!r}")
        self.env = env
        self.metrics = metrics
        self.victim_policy = victim_policy
        self._locks: Dict = {}
        #: Span sink when tracing is on (``None`` otherwise); only the
        #: wait path below touches it, never an immediate grant.
        self.tracer = None
        #: tx_id -> (_Waiter, resource_id) for every blocked transaction.
        self._waiting: Dict[int, Tuple[_Waiter, object]] = {}
        #: tx_id -> Transaction for cycle-victim selection.
        self._tx_by_id: Dict[int, Transaction] = {}

    # -- public API ------------------------------------------------------
    def acquire(self, tx: Transaction, resource_id, mode: LockMode) -> Generator:
        """Request a lock; yields while waiting.

        Returns :data:`LockOutcome.GRANTED` or
        :data:`LockOutcome.DEADLOCK` (the transaction must then abort —
        it is the deadlock victim).
        """
        lock = self._locks.get(resource_id)
        if lock is None:
            lock = self._locks[resource_id] = _Lock()

        held = tx.held_locks.get(resource_id)
        if held is not None and held >= mode:
            self.metrics.record_lock_request(True)
            return LockOutcome.GRANTED

        is_conversion = held is not None  # held S, requesting X
        first_attempt = True
        while True:
            if is_conversion:
                if lock.compatible(LockMode.X, exclude_tx=tx.tx_id):
                    lock.holders[tx.tx_id] = LockMode.X
                    tx.held_locks[resource_id] = LockMode.X
                    self.metrics.record_lock_request(first_attempt)
                    return LockOutcome.GRANTED
            else:
                if not lock.queue and lock.compatible(mode):
                    lock.holders[tx.tx_id] = mode
                    tx.held_locks[resource_id] = mode
                    self.metrics.record_lock_request(first_attempt)
                    return LockOutcome.GRANTED

            # The request must wait: check for a deadlock first.
            if first_attempt:
                self.metrics.record_lock_request(False)
                first_attempt = False
            victim = self._select_deadlock_victim(tx, lock, mode,
                                                  is_conversion)
            if victim is None:
                break
            self.metrics.record_deadlock()
            if victim is tx:
                return LockOutcome.DEADLOCK
            # Aborting another victim may have made this very request
            # grantable (the victim might have been queued ahead of us
            # or held the lock) — re-evaluate from the top.
            self._abort_waiting_victim(victim)

        waiter = _Waiter(tx, mode, Event(self.env), is_conversion)
        if is_conversion:
            lock.queue.appendleft(waiter)
        else:
            lock.queue.append(waiter)
        self._waiting[tx.tx_id] = (waiter, resource_id)
        self._tx_by_id[tx.tx_id] = tx
        tx.waiting_for = resource_id

        wait_start = self.env.now
        outcome = yield waiter.event
        waited = self.env.now - wait_start
        tx.wait_lock += waited
        self.metrics.record_lock_wait(waited)
        tx.waiting_for = None
        if tx.traced and self.tracer is not None and waited > 0:
            self.tracer.span("lock", tx.tx_id, wait_start, self.env.now)
        return outcome

    def withdraw(self, tx: Transaction) -> None:
        """Remove ``tx``'s pending lock wait without waking it.

        Used when the waiting process itself is torn down (interrupted
        / externally aborted) rather than woken as a deadlock victim:
        the waiter entry must leave the queue immediately, or deadlock
        detection would chase a ghost edge and the queue slot would
        block compatible requests behind it.
        """
        entry = self._waiting.pop(tx.tx_id, None)
        if entry is None:
            return
        waiter, resource_id = entry
        lock = self._locks.get(resource_id)
        if lock is not None:
            try:
                lock.queue.remove(waiter)
            except ValueError:  # pragma: no cover - consistency guard
                pass
            self._grant_from_queue(resource_id, lock)
            if not lock.holders and not lock.queue:
                del self._locks[resource_id]
        tx.waiting_for = None

    def release_all(self, tx: Transaction) -> None:
        """Strict 2PL unlock: drop every lock and wake grantable waiters."""
        for resource_id in list(tx.held_locks.keys()):
            lock = self._locks.get(resource_id)
            if lock is None:
                continue
            lock.holders.pop(tx.tx_id, None)
            self._grant_from_queue(resource_id, lock)
            if not lock.holders and not lock.queue:
                del self._locks[resource_id]
        tx.held_locks.clear()
        self._tx_by_id.pop(tx.tx_id, None)

    # -- queue management ------------------------------------------------------
    def _grant_from_queue(self, resource_id, lock: _Lock) -> None:
        while lock.queue:
            head = lock.queue[0]
            tx = head.tx
            if head.is_conversion:
                if not lock.compatible(LockMode.X, exclude_tx=tx.tx_id):
                    return
            elif not lock.compatible(head.mode):
                return
            lock.queue.popleft()
            lock.holders[tx.tx_id] = max(
                head.mode, lock.holders.get(tx.tx_id, LockMode.S)
            )
            tx.held_locks[resource_id] = lock.holders[tx.tx_id]
            self._waiting.pop(tx.tx_id, None)
            head.event.succeed(LockOutcome.GRANTED)

    def _abort_waiting_victim(self, victim: Transaction) -> None:
        """Wake a blocked victim with a DEADLOCK outcome."""
        entry = self._waiting.pop(victim.tx_id, None)
        if entry is None:  # pragma: no cover - guarded by caller
            return
        waiter, resource_id = entry
        lock = self._locks.get(resource_id)
        if lock is not None:
            try:
                lock.queue.remove(waiter)
            except ValueError:  # pragma: no cover - consistency guard
                pass
            self._grant_from_queue(resource_id, lock)
        waiter.event.succeed(LockOutcome.DEADLOCK)

    # -- deadlock detection ------------------------------------------------------
    def _blockers_for(self, tx_id: int, lock: _Lock, mode: LockMode,
                      is_conversion: bool,
                      ahead_of: Optional[_Waiter]) -> Set[int]:
        """Transactions that must finish before this request is granted."""
        blockers: Set[int] = set()
        if is_conversion:
            blockers.update(
                holder for holder in lock.holders if holder != tx_id
            )
            return blockers
        for holder, held_mode in lock.holders.items():
            if holder == tx_id:
                continue
            if mode is LockMode.X or held_mode is LockMode.X:
                blockers.add(holder)
        for waiter in lock.queue:
            if ahead_of is not None and waiter is ahead_of:
                break
            if waiter.tx.tx_id == tx_id:
                continue
            if mode is LockMode.X or waiter.mode is LockMode.X:
                blockers.add(waiter.tx.tx_id)
        return blockers

    def _cycle_with(self, tx: Transaction, lock: _Lock, mode: LockMode,
                    is_conversion: bool) -> Optional[List[int]]:
        """If blocking ``tx`` on ``lock`` closes a cycle, return it."""
        start = tx.tx_id
        initial = self._blockers_for(start, lock, mode, is_conversion, None)
        # Depth-first search through the waits-for graph.
        stack: List[Tuple[int, List[int]]] = [
            (blocker, [start, blocker]) for blocker in initial
        ]
        visited: Set[int] = set()
        while stack:
            current, path = stack.pop()
            if current == start:
                return path
            if current in visited:
                continue
            visited.add(current)
            entry = self._waiting.get(current)
            if entry is None:
                continue
            waiter, resource_id = entry
            blocked_lock = self._locks.get(resource_id)
            if blocked_lock is None:
                continue
            next_blockers = self._blockers_for(
                current, blocked_lock, waiter.mode, waiter.is_conversion,
                ahead_of=waiter,
            )
            for blocker in next_blockers:
                if blocker == start:
                    return path + [start]
                if blocker not in visited:
                    stack.append((blocker, path + [blocker]))
        return None

    def _select_deadlock_victim(self, tx: Transaction, lock: _Lock,
                                mode: LockMode,
                                is_conversion: bool) -> Optional[Transaction]:
        """Return the victim if waiting would deadlock, else None."""
        cycle = self._cycle_with(tx, lock, mode, is_conversion)
        if cycle is None:
            return None
        if self.victim_policy == "requester":
            return tx
        # "youngest": abort the transaction with the latest start time.
        candidates = [tx]
        for tx_id in cycle:
            other = self._tx_by_id.get(tx_id)
            if other is not None and other is not tx:
                candidates.append(other)
        return max(candidates, key=lambda t: (t.start_time, t.tx_id))

    # -- introspection ------------------------------------------------------
    def held_count(self) -> int:
        return sum(len(lock.holders) for lock in self._locks.values())

    def waiting_count(self) -> int:
        return len(self._waiting)
