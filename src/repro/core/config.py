"""Configuration model for TPSIM.

Every knob of the paper's simulation model is represented here, mapping
one-to-one onto the parameter tables:

* Table 3.1 — workload and database model (:class:`PartitionConfig`,
  :class:`SubPartition`, :class:`TransactionTypeConfig`).
* Table 3.3 — computing-module parameters (:class:`CMConfig`).
* Table 3.4 — external storage devices (:class:`DiskUnitConfig`,
  :class:`NVEMConfig`, allocation fields).

A complete simulation is described by a :class:`SystemConfig`; its
:meth:`SystemConfig.validate` method rejects the meaningless allocation
combinations called out in the paper's footnote 4 (e.g. a write buffer
both in NVEM and in a disk cache for the same partition).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "AccessMode",
    "CCMode",
    "CMConfig",
    "DeviceFault",
    "DeviceSpec",
    "DiskUnitConfig",
    "DiskUnitType",
    "Distribution",
    "LOG_COPY_PRIMARY",
    "LOG_COPY_MIRROR",
    "LogAllocation",
    "MEMORY",
    "MediaConfig",
    "NVEM",
    "NVEMCachingMode",
    "NVEMConfig",
    "PartitionConfig",
    "PolicySpec",
    "RecoveryConfig",
    "SubPartition",
    "SystemConfig",
    "TransactionTypeConfig",
    "UpdateStrategy",
]

#: Allocation target meaning "main memory resident" (no external device).
MEMORY = "memory"
#: Allocation target meaning "resident in non-volatile extended memory".
NVEM = "nvem"
#: Logical fault targets for the two copies of an NVEM-resident log.
LOG_COPY_PRIMARY = "log:0"
LOG_COPY_MIRROR = "log:1"


class UpdateStrategy(Enum):
    """Propagation strategy for modified pages [HR83]."""

    FORCE = "force"
    NOFORCE = "noforce"


class CCMode(Enum):
    """Concurrency-control granularity for a partition (§3.2)."""

    NONE = "none"
    PAGE = "page"
    OBJECT = "object"


class AccessMode(Enum):
    """Whether device access keeps the CPU busy (§3.2)."""

    SYNC = "sync"
    ASYNC = "async"


class NVEMCachingMode(Enum):
    """Which pages migrate from main memory to the NVEM cache (§3.2)."""

    NONE = "none"
    MODIFIED = "modified"
    UNMODIFIED = "unmodified"
    ALL = "all"


class DiskUnitType(Enum):
    """Device kinds behind the disk interface (Table 3.4)."""

    REGULAR = "regular"
    VOLATILE_CACHE = "volatile_cache"
    NONVOLATILE_CACHE = "nonvolatile_cache"
    SSD = "ssd"


class Distribution(Enum):
    """Service-time distribution for a delay parameter."""

    CONSTANT = "constant"
    EXPONENTIAL = "exponential"


@dataclass
class DeviceSpec:
    """A storage device as a ``(kind, params)`` spec.

    ``kind`` names a factory in the device registry
    (:mod:`repro.storage.registry`); ``params`` are its keyword
    arguments.  Configuration stays pure data — it never imports a
    concrete device class.
    """

    kind: str
    name: str
    params: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if not self.kind:
            raise ValueError(f"device {self.name!r}: empty kind")
        if not self.name:
            raise ValueError(f"device spec of kind {self.kind!r} needs a name")


@dataclass
class PolicySpec:
    """A replacement policy as a ``(kind, params)`` spec.

    Resolved through the policy registry by the buffer manager and the
    disk-cache policies.  ``params`` are forwarded to the policy factory
    (e.g. ``kin`` / ``kout`` for 2Q).
    """

    kind: str = "lru"
    params: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if not self.kind:
            raise ValueError("replacement policy spec: empty kind")


@dataclass(frozen=True)
class SubPartition:
    """One leg of the generalized b/c access rule (§3.1).

    ``size`` and ``access_prob`` are relative weights; the partition
    normalizes them.  A uniform partition is one subpartition with any
    positive weights.
    """

    size: float
    access_prob: float

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError(f"subpartition size must be positive: {self.size}")
        if self.access_prob < 0:
            raise ValueError(
                f"subpartition access probability must be >= 0: {self.access_prob}"
            )


@dataclass
class PartitionConfig:
    """A database partition (file / relation / index) — Table 3.1."""

    name: str
    num_objects: int
    block_factor: int = 1
    subpartitions: List[SubPartition] = field(
        default_factory=lambda: [SubPartition(1.0, 1.0)]
    )
    cc_mode: CCMode = CCMode.PAGE
    #: Allocation target: MEMORY, NVEM, or the name of a disk unit.
    allocation: str = "unit0"
    access_mode: AccessMode = AccessMode.ASYNC
    nvem_caching: NVEMCachingMode = NVEMCachingMode.NONE
    nvem_write_buffer: bool = False
    #: Sequential partitions are appended to at the current end (HISTORY).
    sequential_append: bool = False

    @property
    def num_pages(self) -> int:
        return max(1, math.ceil(self.num_objects / self.block_factor))

    def page_of_object(self, obj: int) -> int:
        return obj // self.block_factor

    def validate(self) -> None:
        if self.num_objects < 1:
            raise ValueError(f"partition {self.name}: num_objects must be >= 1")
        if self.block_factor < 1:
            raise ValueError(f"partition {self.name}: block_factor must be >= 1")
        if not self.subpartitions:
            raise ValueError(f"partition {self.name}: needs >= 1 subpartition")
        if sum(sp.access_prob for sp in self.subpartitions) <= 0:
            raise ValueError(
                f"partition {self.name}: subpartition access probabilities sum to 0"
            )
        if self.nvem_caching != NVEMCachingMode.NONE and self.nvem_write_buffer:
            # Footnote 4: NVEM caching already covers the write path; a
            # separate write buffer for the same partition is meaningless.
            raise ValueError(
                f"partition {self.name}: NVEM caching and NVEM write buffer "
                "are mutually exclusive"
            )
        if self.allocation == MEMORY and (
            self.nvem_caching != NVEMCachingMode.NONE or self.nvem_write_buffer
        ):
            raise ValueError(
                f"partition {self.name}: memory-resident partitions use no "
                "NVEM cache or write buffer"
            )
        if self.allocation == NVEM and (
            self.nvem_caching != NVEMCachingMode.NONE or self.nvem_write_buffer
        ):
            raise ValueError(
                f"partition {self.name}: NVEM-resident partitions use no "
                "NVEM cache or write buffer"
            )


@dataclass
class TransactionTypeConfig:
    """A transaction type of the synthetic workload model — Table 3.1."""

    name: str
    arrival_rate: float
    tx_size: float
    write_prob: float
    #: Row of the relative reference matrix: partition name -> fraction.
    reference_matrix: Dict[str, float] = field(default_factory=dict)
    sequential: bool = False
    var_size: bool = False

    def validate(self, partition_names: Sequence[str]) -> None:
        if self.arrival_rate < 0:
            raise ValueError(f"tx type {self.name}: negative arrival rate")
        if self.tx_size < 1:
            raise ValueError(f"tx type {self.name}: tx_size must be >= 1")
        if not 0.0 <= self.write_prob <= 1.0:
            raise ValueError(f"tx type {self.name}: write_prob not in [0,1]")
        if not self.reference_matrix:
            raise ValueError(f"tx type {self.name}: empty reference matrix row")
        total = sum(self.reference_matrix.values())
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ValueError(
                f"tx type {self.name}: reference matrix row sums to {total}, "
                "expected 1.0"
            )
        unknown = set(self.reference_matrix) - set(partition_names)
        if unknown:
            raise ValueError(
                f"tx type {self.name}: references unknown partitions {unknown}"
            )


@dataclass
class DiskUnitConfig:
    """One disk unit: SSD, plain disks, or disks with a cache — Table 3.4."""

    name: str
    unit_type: DiskUnitType = DiskUnitType.REGULAR
    num_controllers: int = 1
    controller_delay: float = 0.001
    trans_delay: float = 0.0004
    num_disks: int = 1
    disk_delay: float = 0.015
    cache_size: int = 0
    #: Use the non-volatile cache purely as a write buffer (log units).
    write_buffer_only: bool = False
    #: Table 4.1 gives fixed service times; CONSTANT matches the paper's
    #: "average access time per page" arithmetic (16.4 ms per DB disk
    #: I/O).  Switch to EXPONENTIAL to study service-time variance.
    controller_distribution: Distribution = Distribution.CONSTANT
    disk_distribution: Distribution = Distribution.CONSTANT
    #: How I/Os map to the unit's disk servers: "random" models a
    #: partition "(uniformly) spread across multiple disks" (§3.3) and
    #: avoids hot-page hotspots (e.g. the HISTORY tail page under
    #: FORCE); "page" pins each page to one disk (page_no mod NumDisks).
    striping: str = "random"
    #: Replacement policy of the controller-managed cache (registry
    #: kind + params); the paper's IBM-3990-style caches are LRU.
    cache_policy: PolicySpec = field(default_factory=PolicySpec)

    def validate(self) -> None:
        self.cache_policy.validate()
        if self.striping not in ("random", "page"):
            raise ValueError(
                f"unit {self.name}: unknown striping {self.striping!r}"
            )
        if self.num_controllers < 1:
            raise ValueError(f"unit {self.name}: num_controllers must be >= 1")
        if self.controller_delay < 0 or self.trans_delay < 0:
            raise ValueError(f"unit {self.name}: negative delay")
        if self.unit_type != DiskUnitType.SSD:
            if self.num_disks < 1:
                raise ValueError(f"unit {self.name}: num_disks must be >= 1")
            if self.disk_delay <= 0:
                raise ValueError(f"unit {self.name}: disk_delay must be > 0")
        if self.unit_type in (
            DiskUnitType.VOLATILE_CACHE,
            DiskUnitType.NONVOLATILE_CACHE,
        ):
            if self.cache_size < 1:
                raise ValueError(
                    f"unit {self.name}: cached unit needs cache_size >= 1"
                )
        if self.write_buffer_only and self.unit_type != DiskUnitType.NONVOLATILE_CACHE:
            raise ValueError(
                f"unit {self.name}: write_buffer_only requires a "
                "non-volatile cache"
            )


@dataclass
class NVEMConfig:
    """The non-volatile extended memory device — Table 3.4."""

    num_servers: int = 1
    delay: float = 50e-6
    distribution: Distribution = Distribution.CONSTANT

    def validate(self) -> None:
        if self.num_servers < 1:
            raise ValueError("NVEM needs at least one server")
        if self.delay < 0:
            raise ValueError("NVEM delay must be >= 0")


@dataclass
class LogAllocation:
    """Where the log file lives and whether writes are buffered (§3.3).

    ``device`` is NVEM or a disk-unit name.  ``nvem_write_buffer`` puts a
    write buffer for the log in NVEM (only sensible for a disk-resident
    log).  A write buffer in the disk controller is expressed by giving
    the log unit a non-volatile cache with ``write_buffer_only=True``.
    """

    device: str = "log0"
    nvem_write_buffer: bool = False

    def validate(self) -> None:
        if self.device == MEMORY:
            raise ValueError("the log cannot be volatile-memory resident")
        if self.device == NVEM and self.nvem_write_buffer:
            raise ValueError("an NVEM-resident log needs no NVEM write buffer")


@dataclass
class CMConfig:
    """Computing-module parameters — Table 3.3."""

    mpl: int = 200
    instr_bot: float = 40_000
    instr_or: float = 40_000
    instr_eot: float = 50_000
    num_cpus: int = 4
    mips: float = 50.0
    buffer_size: int = 2000
    update_strategy: UpdateStrategy = UpdateStrategy.NOFORCE
    logging: bool = True
    instr_io: float = 3_000
    instr_nvem: float = 300
    nvem_cache_size: int = 0
    nvem_write_buffer_size: int = 0
    #: Extensions discussed but not modelled in the paper (§3.2 fn. 3,
    #: §4.3): all default off to match the published configuration.
    group_commit_size: int = 1
    group_commit_timeout: float = 0.0
    async_replacement: bool = False
    deferred_nvem_propagation: bool = False
    #: Replacement policies of the software-managed caching levels,
    #: as registry specs ("lru" reproduces the paper).
    mm_policy: PolicySpec = field(default_factory=PolicySpec)
    nvem_policy: PolicySpec = field(default_factory=PolicySpec)

    def validate(self) -> None:
        self.mm_policy.validate()
        self.nvem_policy.validate()
        if self.mpl < 1:
            raise ValueError("MPL must be >= 1")
        if self.num_cpus < 1:
            raise ValueError("need at least one CPU")
        if self.mips <= 0:
            raise ValueError("MIPS must be positive")
        if self.buffer_size < 1:
            raise ValueError("main memory buffer needs >= 1 frame")
        if min(self.instr_bot, self.instr_or, self.instr_eot,
               self.instr_io, self.instr_nvem) < 0:
            raise ValueError("instruction counts must be >= 0")
        if self.nvem_cache_size < 0 or self.nvem_write_buffer_size < 0:
            raise ValueError("NVEM sizes must be >= 0")
        if self.group_commit_size < 1:
            raise ValueError("group_commit_size must be >= 1")
        if self.group_commit_timeout < 0:
            raise ValueError("group_commit_timeout must be >= 0")
        if self.group_commit_size > 1 and self.group_commit_timeout == 0.0:
            # A batch that never fills would wait forever for members
            # that may not arrive: commits would stall indefinitely.
            raise ValueError(
                "group_commit_size > 1 requires a positive "
                "group_commit_timeout (a partial batch must flush)"
            )

    @property
    def instructions_per_second(self) -> float:
        """Capacity of one CPU in instructions per second."""
        return self.mips * 1e6

    def cpu_seconds(self, instructions: float) -> float:
        """Convert an instruction count into seconds on one CPU."""
        return instructions / self.instructions_per_second


@dataclass(frozen=True)
class DeviceFault:
    """One scheduled media fault on a storage device (§4.4 media half).

    ``device`` names a disk unit / registered device, the NVEM bank
    (``"nvem"``), or one logical copy of an NVEM-resident log
    (:data:`LOG_COPY_PRIMARY` / :data:`LOG_COPY_MIRROR`).  ``kind`` is
    ``"transient"`` (I/O errors for ``duration`` seconds, survived by
    retry/backoff at the device access path) or ``"loss"`` (permanent
    media loss at ``time``; the device contents must be rebuilt from the
    archive copy plus a log scan before blocked pages become readable
    again).
    """

    device: str
    time: float
    kind: str = "loss"
    duration: float = 0.0

    def validate(self) -> None:
        if not self.device:
            raise ValueError("device fault: empty device name")
        if self.time <= 0:
            raise ValueError(
                f"device fault on {self.device!r}: time must be positive"
            )
        if self.kind not in ("loss", "transient"):
            raise ValueError(
                f"device fault on {self.device!r}: unknown kind {self.kind!r}"
            )
        if self.kind == "transient" and self.duration <= 0:
            raise ValueError(
                f"transient fault on {self.device!r}: needs duration > 0"
            )
        if self.kind == "loss" and self.duration != 0.0:
            raise ValueError(
                f"loss fault on {self.device!r}: duration is meaningless"
            )


@dataclass
class MediaConfig:
    """Media-failure injection and archive-based media recovery (§4.4).

    All defaults keep the subsystem off; with ``enabled`` and an empty
    fault schedule the run is bit-identical to a build without it (the
    fault gates delegate without touching the event queue or any RNG
    stream).  Retry timing is fully deterministic: a failed attempt
    costs ``error_latency`` to detect plus an exponential backoff
    (``retry_backoff`` doubling by ``retry_backoff_factor`` up to
    ``retry_backoff_max``) and is retried until the transient window
    passes — no randomness, no attempt cap.

    Archive copies model incremental online backups: every
    ``archive_interval`` seconds the archive horizon advances to the
    current log position and the per-device written-page sets reset.
    Rebuilding a lost device restores its pages from the archive device
    in ``archive_batch_pages`` sequential batches (``archive_workers``
    concurrent restore streams) and then redoes every page written
    since the archive horizon from a log scan.
    """

    enabled: bool = False
    faults: Tuple[DeviceFault, ...] = ()
    retry_backoff: float = 0.002
    retry_backoff_factor: float = 2.0
    retry_backoff_max: float = 0.05
    error_latency: float = 0.001
    archive_interval: float = 30.0
    archive_batch_pages: int = 512
    archive_workers: int = 8
    #: Device holding the archive copy; ``None`` means a default
    #: 8-spindle sequential-restore disk unit named ``"archive0"``.
    archive_device: Optional[DeviceSpec] = None
    #: CPU instructions to re-apply one logged page during media redo.
    redo_instr: float = 5_000

    def validate(self) -> None:
        if not self.enabled:
            if self.faults:
                raise ValueError(
                    "media faults configured but media.enabled is False"
                )
            return
        if self.retry_backoff <= 0:
            raise ValueError("retry_backoff must be positive")
        if self.retry_backoff_factor < 1.0:
            raise ValueError("retry_backoff_factor must be >= 1")
        if self.retry_backoff_max < self.retry_backoff:
            raise ValueError("retry_backoff_max must be >= retry_backoff")
        if self.error_latency < 0:
            raise ValueError("error_latency must be >= 0")
        if self.archive_interval <= 0:
            raise ValueError("archive_interval must be positive")
        if self.archive_batch_pages < 1:
            raise ValueError("archive_batch_pages must be >= 1")
        if self.archive_workers < 1:
            raise ValueError("archive_workers must be >= 1")
        if self.redo_instr < 0:
            raise ValueError("media redo_instr must be >= 0")
        if self.archive_device is not None:
            self.archive_device.validate()
        for fault in self.faults:
            fault.validate()


@dataclass
class RecoveryConfig:
    """Crash-recovery and availability simulation (§4.4, [HR83]).

    When ``enabled``, the system runs a fuzzy checkpointer
    (:mod:`repro.recovery.checkpoint`) and honours a deterministic
    crash schedule (:mod:`repro.recovery.crash`): at each instant in
    ``crash_times`` the computing module loses its volatile state,
    in-flight transactions abort, and a restart phase replays the log
    scan and redo I/O through the *actual* configured devices before
    admission resumes.  All defaults keep the subsystem off, so
    recovery-disabled runs are bit-identical to builds without it.
    """

    enabled: bool = False
    #: Fuzzy-checkpoint period in simulated seconds.  Each checkpoint
    #: writes one checkpoint record through the real log device and
    #: (``checkpoint_flush``) destages the dirty page table in the
    #: background, bounding redo work after a crash.
    checkpoint_interval: float = 60.0
    checkpoint_flush: bool = True
    #: Simulated instants at which the CM crashes (strictly increasing).
    #: A crash instant that falls inside a previous restart is skipped
    #: (the module is already down).
    crash_times: Tuple[float, ...] = ()
    #: CPU instructions to apply one redone page during restart.
    redo_instr: float = 5_000
    #: Force every commit log write to two NVEM copies (dual-copy log
    #: mirroring, §4.4): the commit pays a second sequential NVEM force,
    #: and the log survives loss of either single copy.  Requires an
    #: NVEM-resident log.
    log_mirror: bool = False
    #: ARIES-style online redo: after a crash, reopen admission as soon
    #: as the log scan completes and gate page access per-page while the
    #: redo pass runs, instead of holding all transactions until the
    #: full restart finishes.
    online_redo: bool = False
    #: On a crash, volatile disk-controller caches lose their contents;
    #: the pages they held re-enter the redo set (the restart cannot
    #: trust a volatile controller's copies) and post-restart reads miss.
    volatile_cache_loss: bool = True

    def validate(self) -> None:
        if not self.enabled:
            return
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        if self.redo_instr < 0:
            raise ValueError("redo_instr must be >= 0")
        previous = 0.0
        for instant in self.crash_times:
            if instant <= previous:
                raise ValueError(
                    "crash_times must be strictly increasing and positive"
                )
            previous = instant


@dataclass
class TraceConfig:
    """Observability settings (:mod:`repro.trace`) — default off.

    Tracing is a pure side channel: the span sampler draws from its
    own RNG substream and the telemetry process only reads state, so
    simulation results are bit-identical whichever knobs are set (the
    fig4_1 golden checksum is pinned both ways).  ``latency_detail``
    and ``telemetry_interval`` do change the *serialized* Results
    payload (they add ``latency`` / ``timeseries`` blocks), which is
    why each has its own switch instead of riding on ``enabled``.
    """

    enabled: bool = False
    #: Trace every N-th transaction (1 = all).  Sampled from a
    #: dedicated ``trace-sample`` RNG substream.
    sample: int = 1
    #: Bound on recorded spans; once full, further spans are counted
    #: as dropped instead of stored.
    max_spans: int = 250_000
    #: Populate ``Results.latency`` (p50/p95/p99 + SLO attainment).
    latency_detail: bool = False
    #: SLO threshold for ``slo_attainment``, in milliseconds
    #: (default 1 s, the classic TPC-A 90th-percentile bound).
    slo_ms: float = 1000.0
    #: Period of the telemetry gauge sampler in simulated seconds
    #: (0 = no sampler process at all).
    telemetry_interval: float = 0.0
    #: Bound on stored telemetry samples.
    telemetry_max_samples: int = 10_000

    def validate(self) -> None:
        if self.sample < 1:
            raise ValueError("trace sample must be >= 1")
        if self.max_spans < 1:
            raise ValueError("trace max_spans must be >= 1")
        if self.slo_ms <= 0:
            raise ValueError("trace slo_ms must be positive")
        if self.telemetry_interval < 0:
            raise ValueError("telemetry_interval must be >= 0")
        if self.telemetry_max_samples < 1:
            raise ValueError("telemetry_max_samples must be >= 1")
        if self.sample != 1 and not self.enabled:
            raise ValueError(
                "trace sample has no effect with tracing disabled"
            )


@dataclass
class SystemConfig:
    """Complete description of one simulated transaction system."""

    partitions: List[PartitionConfig] = field(default_factory=list)
    disk_units: List[DiskUnitConfig] = field(default_factory=list)
    #: Additional devices behind the disk interface, as registry specs
    #: (``DiskUnitConfig`` entries are spec-resolved the same way; this
    #: list is for kinds the classic table cannot express, e.g.
    #: ``flash_ssd`` or ``battery_dram``).
    devices: List[DeviceSpec] = field(default_factory=list)
    nvem: NVEMConfig = field(default_factory=NVEMConfig)
    cm: CMConfig = field(default_factory=CMConfig)
    log: LogAllocation = field(default_factory=LogAllocation)
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)
    media: MediaConfig = field(default_factory=MediaConfig)
    trace: TraceConfig = field(default_factory=TraceConfig)
    tx_types: List[TransactionTypeConfig] = field(default_factory=list)
    seed: int = 0

    def device_specs(self) -> List[DeviceSpec]:
        """All disk-interface devices as uniform ``(kind, params)`` specs.

        Classic ``DiskUnitConfig`` entries become specs of their
        ``unit_type`` kind carrying the config object; explicit
        :class:`DeviceSpec` entries pass through.  The storage hierarchy
        resolves every entry through the device registry — this method
        is the single place where the two declaration styles meet.
        """
        specs = [
            DeviceSpec(kind=unit.unit_type.value, name=unit.name,
                       params={"config": unit})
            for unit in self.disk_units
        ]
        specs.extend(self.devices)
        return specs

    def nvem_spec(self) -> DeviceSpec:
        """The NVEM device as a registry spec."""
        return DeviceSpec(kind="nvem", name="nvem",
                          params={"config": self.nvem})

    def partition(self, name: str) -> PartitionConfig:
        for part in self.partitions:
            if part.name == name:
                return part
        raise KeyError(f"unknown partition {name!r}")

    def disk_unit(self, name: str) -> DiskUnitConfig:
        for unit in self.disk_units:
            if unit.name == name:
                return unit
        raise KeyError(f"unknown disk unit {name!r}")

    def validate(self) -> None:
        """Check global consistency; raise ``ValueError`` on nonsense."""
        if not self.partitions:
            raise ValueError("no partitions configured")
        names = [p.name for p in self.partitions]
        if len(set(names)) != len(names):
            raise ValueError("duplicate partition names")
        unit_names = [u.name for u in self.disk_units] + \
            [d.name for d in self.devices]
        if len(set(unit_names)) != len(unit_names):
            raise ValueError("duplicate device names")

        self.cm.validate()
        self.nvem.validate()
        self.log.validate()
        self.recovery.validate()
        self.media.validate()
        self.trace.validate()
        for unit in self.disk_units:
            unit.validate()
        for spec in self.devices:
            spec.validate()
            if spec.kind == "nvem":
                raise ValueError(
                    f"device {spec.name}: the NVEM device is configured "
                    "via SystemConfig.nvem, not the devices list"
                )

        valid_targets = {MEMORY, NVEM} | set(unit_names)
        uses_nvem_cache = False
        uses_nvem_wb = False
        disk_unit_names = {u.name for u in self.disk_units}
        for part in self.partitions:
            part.validate()
            if part.allocation not in valid_targets:
                raise ValueError(
                    f"partition {part.name}: unknown allocation target "
                    f"{part.allocation!r}"
                )
            if part.nvem_caching != NVEMCachingMode.NONE:
                uses_nvem_cache = True
                if part.allocation not in disk_unit_names:
                    unit = None
                else:
                    unit = self.disk_unit(part.allocation)
                if unit is not None and unit.unit_type in (
                    DiskUnitType.VOLATILE_CACHE,
                    DiskUnitType.NONVOLATILE_CACHE,
                ) and not unit.write_buffer_only:
                    # Footnote 4: with NVEM caching there is no further
                    # need for a (read) cache in the disk controller.
                    raise ValueError(
                        f"partition {part.name}: NVEM caching combined with "
                        f"a caching disk unit ({unit.name}) is not meaningful"
                    )
            if part.nvem_write_buffer:
                uses_nvem_wb = True
                unit = self.disk_unit(part.allocation) \
                    if part.allocation in disk_unit_names else None
                if unit is not None and \
                        unit.unit_type == DiskUnitType.NONVOLATILE_CACHE:
                    raise ValueError(
                        f"partition {part.name}: write buffer in both NVEM "
                        f"and non-volatile disk cache ({unit.name})"
                    )
        if uses_nvem_cache and self.cm.nvem_cache_size < 1:
            raise ValueError("NVEM caching enabled but nvem_cache_size is 0")
        if uses_nvem_wb and self.cm.nvem_write_buffer_size < 1:
            raise ValueError(
                "NVEM write buffer enabled but nvem_write_buffer_size is 0"
            )

        if self.log.device not in valid_targets - {MEMORY}:
            raise ValueError(
                f"log allocation target {self.log.device!r} unknown"
            )
        if self.recovery.log_mirror and self.log.device != NVEM:
            raise ValueError(
                "log_mirror requires an NVEM-resident log "
                f"(log device is {self.log.device!r})"
            )

        if self.media.enabled:
            fault_targets = set(unit_names) | {
                NVEM, LOG_COPY_PRIMARY, LOG_COPY_MIRROR,
            }
            archive_name = (
                self.media.archive_device.name
                if self.media.archive_device is not None else "archive0"
            )
            if archive_name in set(unit_names) | {NVEM, MEMORY}:
                raise ValueError(
                    f"archive device name {archive_name!r} collides with a "
                    "configured device"
                )
            for fault in self.media.faults:
                if fault.device not in fault_targets:
                    raise ValueError(
                        f"media fault targets unknown device "
                        f"{fault.device!r}"
                    )
                if fault.device in (LOG_COPY_PRIMARY, LOG_COPY_MIRROR):
                    if fault.kind != "loss":
                        raise ValueError(
                            "transient faults target devices, not log "
                            f"copies ({fault.device!r})"
                        )
                    if self.log.device != NVEM:
                        raise ValueError(
                            f"log-copy fault {fault.device!r} requires an "
                            "NVEM-resident log"
                        )
                    if (fault.device == LOG_COPY_MIRROR
                            and not self.recovery.log_mirror):
                        raise ValueError(
                            f"fault on {LOG_COPY_MIRROR!r} requires "
                            "recovery.log_mirror"
                        )

        for tx_type in self.tx_types:
            tx_type.validate(names)

    @property
    def theoretical_mips(self) -> float:
        """Aggregate CPU capacity in MIPS."""
        return self.cm.num_cpus * self.cm.mips

    def fingerprint(self) -> str:
        """Canonical content hash of this configuration.

        A recursive dataclass walk (:mod:`repro.core.fingerprint`)
        normalized to JSON and hashed — the configuration half of the
        point-cache key used by :mod:`repro.experiments.store`.  Two
        configs with equal field values fingerprint identically no
        matter how they were constructed.
        """
        from repro.core.fingerprint import fingerprint

        return fingerprint(self)
