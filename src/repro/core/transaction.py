"""Transaction records: the unit of work flowing through the system.

A :class:`Transaction` is a pre-generated reference string (access
invariance on restart, cf. [FRT90]) plus runtime bookkeeping: locks
held, pages modified, response-time composition timers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

__all__ = ["ObjectRef", "Transaction"]


class ObjectRef:
    """One object access inside a transaction."""

    __slots__ = ("partition_index", "object_no", "page_no", "is_write", "tag")

    def __init__(self, partition_index: int, object_no: int, page_no: int,
                 is_write: bool, tag: Optional[str] = None):
        self.partition_index = partition_index
        self.object_no = object_no
        self.page_no = page_no
        self.is_write = is_write
        #: Statistics label (record type); defaults to the partition name.
        self.tag = tag

    @property
    def page_key(self) -> Tuple[int, int]:
        return (self.partition_index, self.page_no)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "W" if self.is_write else "R"
        return (f"<ObjectRef p{self.partition_index} obj={self.object_no} "
                f"page={self.page_no} {mode}>")


class Transaction:
    """A transaction instance with its reference string and timers."""

    __slots__ = (
        "tx_id", "tx_type", "arrival_time", "refs", "is_update",
        "start_time", "restarts",
        "modified_pages", "held_locks",
        "wait_input_queue", "wait_cpu", "service_cpu",
        "wait_lock", "wait_sync_io", "wait_async_io", "wait_nvem",
        "waiting_for", "traced",
    )

    def __init__(self, tx_id: int, tx_type: str, refs: List[ObjectRef]):
        self.tx_id = tx_id
        self.tx_type = tx_type
        self.refs = refs
        self.is_update = any(ref.is_write for ref in refs)
        self.arrival_time = 0.0
        self.start_time = 0.0
        self.restarts = 0
        #: Page keys this transaction has modified (for FORCE at commit).
        self.modified_pages: Set[Tuple[int, int]] = set()
        #: Lock resource ids currently held (managed by the lock manager).
        self.held_locks: Dict = {}
        # Response-time composition accumulators (seconds).
        self.wait_input_queue = 0.0
        self.wait_cpu = 0.0
        self.service_cpu = 0.0
        self.wait_lock = 0.0
        self.wait_sync_io = 0.0
        self.wait_async_io = 0.0
        self.wait_nvem = 0.0
        #: Lock resource id this transaction is currently blocked on.
        self.waiting_for = None
        #: Selected by the span sampler (:mod:`repro.trace`); slow-path
        #: components only emit spans for transactions carrying this.
        self.traced = False

    @property
    def size(self) -> int:
        return len(self.refs)

    def reset_for_restart(self) -> None:
        """Clear per-attempt state; timers keep accumulating."""
        self.restarts += 1
        self.modified_pages.clear()
        self.held_locks.clear()
        self.waiting_for = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Transaction #{self.tx_id} {self.tx_type} "
                f"size={len(self.refs)} restarts={self.restarts}>")
