"""The transaction manager: admission, execution, commit, restart (§3.2).

The TM runs an *open* system: the SOURCE submits transactions at their
arrival rate; at most ``MPL`` are active concurrently, the rest wait in
a FIFO input queue.  Execution charges CPU at BOT, per object reference
and at EOT (exponentially distributed instruction counts), requests
locks from the lock manager (granularity per partition), fixes pages
through the buffer manager, and commits in two phases: (1) the buffer
manager writes log data and — under FORCE — forces modified pages;
(2) locks are released.

A transaction denied by deadlock detection aborts, releases its locks
and restarts immediately with the *same* reference string (access
invariance [FRT90]); its response time keeps accumulating across
restarts.
"""

from __future__ import annotations

from typing import Generator, List

from repro.core.bm import BufferManager
from repro.core.cc import LockManager, LockMode, LockOutcome
from repro.core.config import CCMode, PartitionConfig, SystemConfig
from repro.core.cpu import CPUPool
from repro.core.metrics import MetricsCollector
from repro.core.transaction import ObjectRef, Transaction
from repro.sim import Environment, Event, Interrupt, Resource

__all__ = ["TransactionManager"]


class TransactionManager:
    """Controls the execution of transactions on one computing module."""

    def __init__(self, env: Environment, config: SystemConfig,
                 cpu: CPUPool, locks: LockManager, bm: BufferManager,
                 metrics: MetricsCollector, streams=None):
        self.env = env
        self.config = config
        self.cm = config.cm
        self.cpu = cpu
        self.locks = locks
        self.bm = bm
        self.metrics = metrics
        #: RNG for the randomized restart backoff (optional; without it
        #: aborted transactions restart immediately).
        self.streams = streams
        self.partitions: List[PartitionConfig] = list(config.partitions)
        #: Span sink (:class:`repro.trace.Tracer`) when the run enabled
        #: tracing; ``None`` keeps the hot path free of per-event
        #: branching (the traced twin of ``_execute`` is selected once
        #: per transaction).
        self.tracer = None
        self.mpl_slots = Resource(env, self.cm.mpl, name="mpl")
        self.active = 0
        self.submitted = 0
        self.completed = 0
        #: Live lifecycle processes by tx id — the crash controller
        #: interrupts all of them when the CM fails.
        self._lifecycles = {}
        #: Pending while the CM is down (crash/restart); admission and
        #: execution wait on it.  ``None`` means online.
        self._offline_gate: "Event | None" = None

    # -- admission ------------------------------------------------------
    def submit(self, tx: Transaction):
        """Accept a new transaction from the SOURCE (open system).

        Returns the lifecycle :class:`~repro.sim.Process` so callers
        implementing external abort policies can ``interrupt()`` it.
        """
        tx.arrival_time = self.env.now
        self.submitted += 1
        if self.tracer is not None:
            self.tracer.admit(tx)
        proc = self.env.process(self._lifecycle(tx))
        # env.process schedules lazily, so the lifecycle has not run
        # (and cannot have deregistered itself) yet.
        self._lifecycles[tx.tx_id] = proc
        return proc

    @property
    def input_queue_length(self) -> int:
        return self.mpl_slots.queue_length

    # -- crash support (see repro.recovery.crash) -----------------------
    @property
    def is_online(self) -> bool:
        """False while a crash/restart outage is in progress."""
        return self._offline_gate is None

    def take_offline(self) -> None:
        """Shut the admission gate: nothing starts until go_online()."""
        if self._offline_gate is None:
            self._offline_gate = Event(self.env)

    def go_online(self) -> None:
        """Reopen the gate; every transaction waiting on it proceeds."""
        gate = self._offline_gate
        if gate is not None:
            self._offline_gate = None
            gate.succeed()

    def interrupt_active(self, cause="crash") -> int:
        """Interrupt every live lifecycle; returns how many there were.

        Transactions submitted *after* this call (e.g. arrivals during
        the restart) are untouched — they wait at the offline gate.
        """
        victims = list(self._lifecycles.values())
        for proc in victims:
            proc.interrupt(cause)
        return len(victims)

    def _lifecycle(self, tx: Transaction) -> Generator:
        try:
            yield from self._lifecycle_body(tx)
        finally:
            self._lifecycles.pop(tx.tx_id, None)

    def _lifecycle_body(self, tx: Transaction) -> Generator:
        gate = self._offline_gate
        if gate is not None:
            # The CM is down (crash/restart): wait out the outage.  The
            # wait counts as input-queue time, so availability shows up
            # in the response-time composition.
            queued_at = self.env.now
            try:
                yield gate
            except Interrupt:
                self.metrics.record_abort(tx, restarted=False)
                return
            tx.wait_input_queue += self.env.now - queued_at
            if tx.traced and self.tracer is not None \
                    and self.env.now > queued_at:
                self.tracer.span("queue", tx.tx_id, queued_at, self.env.now)
        slot = self.mpl_slots.request()
        queued_at = self.env.now
        self.metrics.note_input_queue(self.mpl_slots.queue_length)
        try:
            yield slot
        except Interrupt:
            # Interrupted while queueing for admission.  The kernel has
            # already withdrawn the request (Request._abandoned); the
            # explicit cancel is an idempotent belt-and-braces for
            # callers that resume this generator by hand.  Count the
            # shed transaction as an abort so submitted stays equal to
            # completed + aborted + in-flight.
            self.mpl_slots.cancel(slot)
            self.metrics.record_abort(tx, restarted=False)
            return
        tx.wait_input_queue += self.env.now - queued_at
        if tx.traced and self.tracer is not None \
                and self.env.now > queued_at:
            self.tracer.span("queue", tx.tx_id, queued_at, self.env.now)
        self.active += 1
        try:
            yield from self._execute(tx)
            # Only a committed lifecycle counts as completed: the
            # distributed layer reports ``completed`` as the node's
            # committed count.
            self.completed += 1
        except Interrupt:
            # Externally aborted mid-flight (crash or an abort policy
            # beyond the paper's requester-aborts default): back out any
            # pending lock wait and release everything held, then fall
            # through to the finally block to free the MPL slot.  The
            # CPU / device / NVEM units the transaction held are
            # returned by the interrupt-safe service generators
            # themselves.
            self.locks.withdraw(tx)
            self.locks.release_all(tx)
            self.metrics.record_abort(tx, restarted=False)
        finally:
            self.active -= 1
            self.mpl_slots.release(slot)

    # -- execution ------------------------------------------------------
    def _lock_id(self, part_index: int, part: PartitionConfig,
                 ref: ObjectRef):
        if part.cc_mode is CCMode.PAGE:
            return (part_index, 0, ref.page_no)
        return (part_index, 1, ref.object_no)

    def _execute(self, tx: Transaction) -> Generator:
        if tx.traced and self.tracer is not None:
            # One dispatch per transaction; the untraced loop below
            # stays exactly as it always was (zero-overhead invariant).
            yield from self._execute_traced(tx)
            return
        while True:
            tx.start_time = self.env.now
            burst = self.cpu.execute_event(tx, self.cm.instr_bot)
            if burst is not None:
                yield burst
            aborted = False
            for ref in tx.refs:
                part = self.partitions[ref.partition_index]
                if part.cc_mode is not CCMode.NONE:
                    mode = LockMode.X if ref.is_write else LockMode.S
                    outcome = yield from self.locks.acquire(
                        tx, self._lock_id(ref.partition_index, part, ref),
                        mode,
                    )
                    if outcome is LockOutcome.DEADLOCK:
                        aborted = True
                        break
                burst = self.cpu.execute_event(tx, self.cm.instr_or)
                if burst is not None:
                    yield burst
                # Hot path: a buffer hit costs no simulated time, so it
                # is a plain call — only misses enter the generator.
                if self.bm.fix_page_fast(tx, ref) is None:
                    yield from self.bm.fix_page_miss(tx, ref)
            if not aborted:
                burst = self.cpu.execute_event(tx, self.cm.instr_eot)
                if burst is not None:
                    yield burst
                # Commit phase 1: log + (FORCE) forced page writes.
                yield from self.bm.commit(tx)
                # Commit phase 2: release locks.
                self.locks.release_all(tx)
                self.metrics.record_commit(
                    tx, self.env.now - tx.arrival_time
                )
                return
            # Deadlock abort: back out and retry with the same
            # reference string.  A small randomized backoff breaks the
            # livelock where two transactions keep re-colliding in
            # lockstep (the paper is silent on restart timing).
            self.locks.release_all(tx)
            self.metrics.record_abort(tx)
            tx.reset_for_restart()
            if self.streams is not None:
                backoff = self.streams.exponential(
                    "restart-backoff", 0.002 * min(tx.restarts, 5)
                )
                if backoff > 0:
                    yield self.env.timeout(backoff)

    def _execute_traced(self, tx: Transaction) -> Generator:
        """Span-emitting twin of :meth:`_execute` — keep in lockstep.

        Duplicated rather than branched-per-event so enabling tracing
        cannot slow the untraced path.  Every time-advancing segment is
        wrapped in exactly one phase span ("cpu.bot", "lock" — emitted
        by the lock manager —, "cpu.ref", "fix", "cpu.eot", "commit",
        "backoff"), and the input queue is covered by the lifecycle's
        "queue" span, so for a committed transaction the phase spans
        tile the whole arrival-to-commit interval: the attribution
        table sums to the measured response time by construction.
        Span names are the literals from
        :data:`repro.trace.tracer.PHASE_SPANS` (no import: core must
        not depend on the observability package).
        """
        tracer = self.tracer
        env = self.env
        while True:
            tx.start_time = env.now
            t0 = env.now
            burst = self.cpu.execute_event(tx, self.cm.instr_bot)
            if burst is not None:
                yield burst
                if env.now > t0:
                    tracer.span("cpu.bot", tx.tx_id, t0, env.now)
            aborted = False
            for ref in tx.refs:
                part = self.partitions[ref.partition_index]
                if part.cc_mode is not CCMode.NONE:
                    mode = LockMode.X if ref.is_write else LockMode.S
                    outcome = yield from self.locks.acquire(
                        tx, self._lock_id(ref.partition_index, part, ref),
                        mode,
                    )
                    if outcome is LockOutcome.DEADLOCK:
                        aborted = True
                        break
                t0 = env.now
                burst = self.cpu.execute_event(tx, self.cm.instr_or)
                if burst is not None:
                    yield burst
                    if env.now > t0:
                        tracer.span("cpu.ref", tx.tx_id, t0, env.now)
                if self.bm.fix_page_fast(tx, ref) is None:
                    t0 = env.now
                    yield from self.bm.fix_page_miss(tx, ref)
                    if env.now > t0:
                        tracer.span("fix", tx.tx_id, t0, env.now)
            if not aborted:
                t0 = env.now
                burst = self.cpu.execute_event(tx, self.cm.instr_eot)
                if burst is not None:
                    yield burst
                    if env.now > t0:
                        tracer.span("cpu.eot", tx.tx_id, t0, env.now)
                t0 = env.now
                yield from self.bm.commit(tx)
                if env.now > t0:
                    tracer.span("commit", tx.tx_id, t0, env.now)
                self.locks.release_all(tx)
                self.metrics.record_commit(
                    tx, self.env.now - tx.arrival_time
                )
                tracer.span("tx", tx.tx_id, tx.arrival_time, env.now)
                return
            self.locks.release_all(tx)
            self.metrics.record_abort(tx)
            tx.reset_for_restart()
            if self.streams is not None:
                backoff = self.streams.exponential(
                    "restart-backoff", 0.002 * min(tx.restarts, 5)
                )
                if backoff > 0:
                    t0 = env.now
                    yield self.env.timeout(backoff)
                    tracer.span("backoff", tx.tx_id, t0, env.now)
