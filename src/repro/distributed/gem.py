"""Global extended memory (GEM): a shared second-level page cache.

Following [BHR91]/[Ra91], the nodes of a locally distributed system
share one non-volatile extended memory.  Unlike the single-system NVEM
cache of §3.2 (which enforces a single-copy invariant with main
memory), GEM keeps its copy when a node reads a page — the whole point
is that *other* nodes hit it too.  Semantics:

* a node's buffer miss probes GEM before going to disk (one NVEM
  access); hits leave the GEM copy in place;
* pages replaced from any node's buffer migrate into GEM; modified
  pages immediately start an asynchronous disk write, exactly like the
  single-system write path;
* when a transaction commits, the current version of its modified
  pages is written to GEM (at NVEM speed) so other nodes always find
  the newest committed version — their own stale buffer copies are
  invalidated by the commit broadcast (see
  :class:`repro.distributed.system.DistributedSystem`).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim import Environment
from repro.sim.stats import CategoryCounter
from repro.storage.policies import ReplacementPolicy
from repro.storage.registry import make_policy

__all__ = ["GlobalExtendedMemory"]


class GlobalExtendedMemory:
    """Shared NVEM page cache + write buffer for all nodes.

    ``device`` is the shared NVEM device (anything exposing the
    ``access(kind)`` generator); ``policy`` selects the replacement
    structure from the policy registry.
    """

    def __init__(self, env: Environment, device, capacity: int,
                 policy="lru"):
        if capacity < 1:
            raise ValueError("GEM needs capacity >= 1")
        self.env = env
        self.device = device
        self.cache: ReplacementPolicy = make_policy(policy, capacity)
        self.stats = CategoryCounter()

    def __len__(self) -> int:
        return len(self.cache)

    def __contains__(self, key) -> bool:
        return key in self.cache

    # -- state transitions (no simulated time) ---------------------------
    def probe(self, key) -> Optional[object]:
        """Look up a page for a node's buffer miss; copy stays in GEM."""
        entry = self.cache.get(key)
        self.stats.add("hit" if entry is not None else "miss")
        return entry

    def make_room(self) -> bool:
        """Drop the LRU clean entry; False if everything is in flight."""
        if not self.cache.is_full:
            return True
        victim = self.cache.victim(lambda e: not e.dirty)
        if victim is None:
            return False
        self.cache.remove(victim.key)
        self.stats.add("evict")
        return True

    def install(self, key, dirty: bool) -> Optional[object]:
        """Insert/refresh a page; returns the entry (None if no room)."""
        entry = self.cache.get(key)
        if entry is not None:
            entry.dirty = entry.dirty or dirty
            return entry
        if not self.make_room():
            self.stats.add("install_skipped")
            return None
        self.stats.add("install")
        return self.cache.insert(key, dirty=dirty)

    def invalidate(self, key) -> bool:
        """Drop a (stale) page version, e.g. on an aborted propagation."""
        if key in self.cache:
            entry = self.cache.peek(key)
            if not entry.dirty:
                self.cache.remove(key)
                self.stats.add("invalidate")
                return True
        return False

    def mark_clean(self, key, entry) -> None:
        """Disk copy is current (async write finished)."""
        current = self.cache.peek(key)
        if current is entry:
            entry.dirty = False
            entry.pending_write = None

    # -- timed access ------------------------------------------------------
    def access(self, kind: str) -> Generator:
        """One page transfer between a node and GEM."""
        result = yield from self.device.access(kind)
        return result
