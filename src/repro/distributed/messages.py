"""Inter-node communication for the distributed extension.

A message costs CPU instructions on the sender and the receiver plus a
coupling latency.  Two presets reflect [Ra91]'s argument:

* :meth:`CouplingConfig.nvem_coupling` — message exchange through
  shared non-volatile extended memory: ~100 µs latency and short
  pathlengths (no protocol stack).
* :meth:`CouplingConfig.network_coupling` — a conventional local
  network: ~1 ms latency and several thousand instructions per send
  and receive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.core.cpu import CPUPool
from repro.core.transaction import Transaction
from repro.sim import Environment
from repro.sim.stats import CategoryCounter

__all__ = ["CouplingConfig", "MessageBus"]


@dataclass
class CouplingConfig:
    """Cost model for one inter-node message."""

    instr_send: float = 2_000
    instr_receive: float = 2_000
    latency: float = 100e-6

    @classmethod
    def nvem_coupling(cls) -> "CouplingConfig":
        """Message exchange via shared NVEM ([Ra91])."""
        return cls(instr_send=2_000, instr_receive=2_000, latency=100e-6)

    @classmethod
    def network_coupling(cls) -> "CouplingConfig":
        """Conventional LAN messages with protocol overhead."""
        return cls(instr_send=8_000, instr_receive=8_000, latency=1e-3)

    def validate(self) -> None:
        if self.instr_send < 0 or self.instr_receive < 0:
            raise ValueError("message instruction counts must be >= 0")
        if self.latency < 0:
            raise ValueError("message latency must be >= 0")


class MessageBus:
    """Delivers messages between nodes, charging both CPUs."""

    def __init__(self, env: Environment, config: CouplingConfig):
        config.validate()
        self.env = env
        self.config = config
        self.stats = CategoryCounter()

    def round_trip(self, tx: Optional[Transaction],
                   sender_cpu: CPUPool, receiver_cpu: CPUPool,
                   kind: str = "rpc") -> Generator:
        """A request/response exchange (e.g. a remote lock request).

        Send overhead on the requester, latency, receive + send on the
        responder, latency back, receive on the requester.
        """
        self.stats.add(kind)
        self.stats.add("messages", 2)
        burst = sender_cpu.execute_event(tx, self.config.instr_send,
                                         exponential=False)
        if burst is not None:
            yield burst
        yield self.env.timeout(self.config.latency)
        burst = receiver_cpu.execute_event(None, self.config.instr_receive
                                           + self.config.instr_send,
                                           exponential=False)
        if burst is not None:
            yield burst
        yield self.env.timeout(self.config.latency)
        burst = sender_cpu.execute_event(tx, self.config.instr_receive,
                                         exponential=False)
        if burst is not None:
            yield burst

    def one_way(self, tx: Optional[Transaction], sender_cpu: CPUPool,
                receiver_cpu: CPUPool, kind: str = "notify") -> Generator:
        """A single message (e.g. a broadcast invalidation)."""
        self.stats.add(kind)
        self.stats.add("messages", 1)
        burst = sender_cpu.execute_event(tx, self.config.instr_send,
                                         exponential=False)
        if burst is not None:
            yield burst
        yield self.env.timeout(self.config.latency)
        burst = receiver_cpu.execute_event(None, self.config.instr_receive,
                                           exponential=False)
        if burst is not None:
            yield burst
