"""A locally distributed, shared-disk transaction system.

``DistributedSystem`` couples N computing nodes — each with its own
CPUs, main-memory buffer and transaction manager — to one shared
storage subsystem.  Concurrency and coherency control follow the
data-sharing designs of [Ra88]/[BHR91]:

* **Central locking**: one node hosts the global lock manager; lock
  requests from other nodes pay a message round trip, releases one
  one-way message (both with CPU overhead on each end and coupling
  latency — NVEM coupling makes them cheap, [Ra91]).
* **Global extended memory (GEM)**: an optional shared second-level
  page cache.  Buffer misses probe GEM before disk; pages replaced
  from any node migrate into it; at commit the new versions of
  modified pages are written to GEM (update propagation at NVEM
  speed), and an invalidation broadcast removes stale copies from the
  other nodes' buffers.
* **Broadcast invalidation** keeps node buffers coherent; without GEM
  the invalidated page is re-read from disk on the next access.

Transactions are routed to nodes round-robin (or uniformly at random).
The public surface mirrors :class:`repro.core.model.TransactionSystem`
(``run``, ``snapshot``, a ``tm.submit`` router and a prewarm fan-out),
so every existing workload generator works unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.core.bm import BufferManager
from repro.core.cc import LockManager, LockMode, LockOutcome
from repro.core.config import SystemConfig
from repro.core.cpu import CPUPool
from repro.core.metrics import (
    LEVEL_NVEM_CACHE,
    MetricsCollector,
    Results,
)
from repro.core.tm import TransactionManager
from repro.core.transaction import Transaction
from repro.distributed.gem import GlobalExtendedMemory
from repro.distributed.messages import CouplingConfig, MessageBus
from repro.sim import Environment, RandomStreams
from repro.sim.stats import CategoryCounter
from repro.storage.hierarchy import StorageSubsystem

__all__ = ["DistributedConfig", "DistributedSystem", "NodeResults"]


@dataclass
class DistributedConfig:
    """Parameters of the distributed extension."""

    num_nodes: int = 2
    coupling: CouplingConfig = field(
        default_factory=CouplingConfig.nvem_coupling
    )
    #: Shared GEM cache capacity in pages (0 disables GEM).
    gem_capacity: int = 0
    central_lock_node: int = 0
    #: "round_robin" or "random" transaction routing.
    routing: str = "round_robin"

    def validate(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("need at least one node")
        if not 0 <= self.central_lock_node < self.num_nodes:
            raise ValueError("central lock node out of range")
        if self.routing not in ("round_robin", "random"):
            raise ValueError(f"unknown routing {self.routing!r}")
        if self.gem_capacity < 0:
            raise ValueError("gem_capacity must be >= 0")
        self.coupling.validate()


@dataclass
class NodeResults:
    """Per-node share of the run."""

    node_id: int
    committed: int
    cpu_utilization: float


class _NodeBufferManager(BufferManager):
    """Per-node buffer manager with GEM integration.

    Overrides the single-system NVEM-cache paths: misses probe the
    shared GEM (copies stay there — no single-copy rule across nodes),
    evictions migrate into GEM, and commit propagates modified pages to
    GEM so other nodes always find the latest committed version.
    """

    def __init__(self, *args, gem: Optional[GlobalExtendedMemory],
                 node_id: int, invalidations: CategoryCounter, **kwargs):
        super().__init__(*args, **kwargs)
        self.gem = gem
        self.node_id = node_id
        self.invalidation_stats = invalidations

    # -- fetch path ------------------------------------------------------
    def _claim_source(self, part, key):
        if self.gem is not None and not \
                self.storage.is_nvem_resident(part.name) and not \
                self.storage.is_memory_resident(part.name):
            if self.gem.probe(key) is not None:
                return LEVEL_NVEM_CACHE, False  # copy stays in GEM
        return super()._claim_source(part, key)

    # -- write/migration path -----------------------------------------------
    def _migrates_to_nvem(self, part, dirty: bool) -> bool:
        if self.gem is not None:
            return not self.storage.is_nvem_resident(part.name)
        return super()._migrates_to_nvem(part, dirty)

    def _gem_async_write(self, key, part, entry) -> Generator:
        burst = self.cpu.execute_event(None, self.cm.instr_io,
                                       exponential=False)
        if burst is not None:
            yield burst
        yield from self.storage.write_page(key[0], part.name, key[1])
        self.metrics.record_io("db_write_async")
        self.gem.mark_clean(key, entry)

    def _nvem_insert(self, tx, key, dirty: bool) -> Generator:
        if self.gem is None:
            yield from super()._nvem_insert(tx, key, dirty)
            return
        part = self.partitions[key[0]]
        entry = self.gem.install(key, dirty)
        if entry is None:
            # GEM saturated with in-flight pages: write through to disk.
            if dirty:
                yield from self._unit_write(tx, key, part)
            return
        if dirty and entry.pending_write is None:
            entry.pending_write = self.env.process(
                self._gem_async_write(key, part, entry)
            )
        yield from self.cpu.execute_with_sync_access(
            tx, self.cm.instr_nvem, self.gem.access("migrate"),
        )
        self.metrics.record_io("nvem_cache_write")

    # -- commit propagation ---------------------------------------------
    def propagate_commit(self, tx: Transaction) -> Generator:
        """Write committed page versions to GEM (update propagation)."""
        if self.gem is None:
            return
        for key in sorted(tx.modified_pages):
            part = self.partitions[key[0]]
            if self.storage.is_nvem_resident(part.name) or \
                    self.storage.is_memory_resident(part.name):
                continue
            mm_entry = self.mm.peek(key)
            if mm_entry is not None:
                mm_entry.dirty = False  # GEM now owns persistence
            yield from self._nvem_insert(tx, key, dirty=True)

    # -- warm start ------------------------------------------------------
    def _prewarm_nvem_insert(self, key) -> None:
        if self.gem is None:
            super()._prewarm_nvem_insert(key)
            return
        self.gem.install(key, dirty=False)

    # -- coherency ------------------------------------------------------
    def invalidate_pages(self, keys) -> int:
        """Drop stale copies after another node's commit."""
        dropped = 0
        for key in keys:
            entry = self.mm.peek(key)
            if entry is not None and entry.fix_count == 0 and \
                    not entry.dirty and key not in self._evicting:
                self.mm.remove(key)
                dropped += 1
        if dropped:
            self.invalidation_stats.add("pages_dropped", dropped)
        return dropped


class _NodeLockManager:
    """Lock-manager stub charging message costs for remote requests."""

    def __init__(self, node_id: int, system: "DistributedSystem"):
        self.node_id = node_id
        self.system = system

    @property
    def _is_central(self) -> bool:
        return self.node_id == self.system.dconfig.central_lock_node

    def acquire(self, tx, resource_id, mode: LockMode) -> Generator:
        system = self.system
        if not self._is_central:
            yield from system.bus.round_trip(
                tx, system.nodes[self.node_id].cpu,
                system.nodes[system.dconfig.central_lock_node].cpu,
                kind="lock_request",
            )
        outcome = yield from system.locks.acquire(tx, resource_id, mode)
        return outcome

    def release_all(self, tx) -> None:
        # Releases piggyback on the commit message; the CPU cost of that
        # message is charged in the commit broadcast, not here.
        self.system.locks.release_all(tx)


class _Node:
    """One computing module of the distributed system."""

    def __init__(self, node_id: int, system: "DistributedSystem"):
        self.node_id = node_id
        config = system.config
        self.cpu = CPUPool(system.env, system.streams, config.cm)
        self.bm = _NodeBufferManager(
            system.env, system.streams, config, self.cpu,
            system.storage, system.metrics,
            gem=system.gem, node_id=node_id,
            invalidations=system.invalidation_stats,
        )
        self.locks = _NodeLockManager(node_id, system)
        self.tm = _DistributedTM(node_id, system, self)

    def invalidate(self, keys) -> int:
        return self.bm.invalidate_pages(keys)


class _DistributedTM(TransactionManager):
    """Per-node TM: commit additionally propagates + broadcasts."""

    def __init__(self, node_id: int, system: "DistributedSystem",
                 node: _Node):
        super().__init__(system.env, system.config, node.cpu,
                         node.locks, node.bm, system.metrics,
                         streams=system.streams)
        self.node_id = node_id
        self.system = system

    def _execute(self, tx: Transaction) -> Generator:
        # Identical control flow to the central TM, plus commit-time
        # GEM propagation and the invalidation broadcast (phase 1.5).
        from repro.core.config import CCMode

        while True:
            tx.start_time = self.env.now
            burst = self.cpu.execute_event(tx, self.cm.instr_bot)
            if burst is not None:
                yield burst
            aborted = False
            for ref in tx.refs:
                part = self.partitions[ref.partition_index]
                if part.cc_mode is not CCMode.NONE:
                    mode = LockMode.X if ref.is_write else LockMode.S
                    outcome = yield from self.locks.acquire(
                        tx, self._lock_id(ref.partition_index, part, ref),
                        mode,
                    )
                    if outcome is LockOutcome.DEADLOCK:
                        aborted = True
                        break
                burst = self.cpu.execute_event(tx, self.cm.instr_or)
                if burst is not None:
                    yield burst
                # Hot path: buffer hits complete synchronously (see the
                # central TM); only misses enter the generator.
                if self.bm.fix_page_fast(tx, ref) is None:
                    yield from self.bm.fix_page_miss(tx, ref)
            if not aborted:
                burst = self.cpu.execute_event(tx, self.cm.instr_eot)
                if burst is not None:
                    yield burst
                yield from self.bm.commit(tx)
                yield from self.bm.propagate_commit(tx)
                if tx.modified_pages:
                    yield from self.system.broadcast_invalidation(
                        tx, self.node_id
                    )
                self.locks.release_all(tx)
                self.metrics.record_commit(tx,
                                           self.env.now - tx.arrival_time)
                return
            self.locks.release_all(tx)
            self.metrics.record_abort(tx)
            tx.reset_for_restart()


class _Router:
    """Routes submitted transactions to node TMs (the system's `tm`)."""

    def __init__(self, system: "DistributedSystem"):
        self.system = system
        self._next = 0

    def submit(self, tx: Transaction) -> None:
        system = self.system
        if system.dconfig.routing == "random":
            index = system.streams.uniform_int(
                "dist-routing", 0, system.dconfig.num_nodes - 1
            )
        else:
            index = self._next
            self._next = (self._next + 1) % system.dconfig.num_nodes
        system.nodes[index].tm.submit(tx)

    @property
    def input_queue_length(self) -> int:
        return max(node.tm.input_queue_length
                   for node in self.system.nodes)

    @property
    def submitted(self) -> int:
        return sum(node.tm.submitted for node in self.system.nodes)


class _PrewarmFanout:
    """Replays prewarm references into every node's buffer.

    Hot pages end up replicated in all node buffers — the steady state
    of a data-sharing system where every node serves the same workload.
    """

    def __init__(self, system: "DistributedSystem"):
        self.system = system

    def prewarm_reference(self, partition_index: int, page_no: int,
                          is_write: bool) -> None:
        for node in self.system.nodes:
            node.bm.prewarm_reference(partition_index, page_no, is_write)


class DistributedSystem:
    """N-node shared-disk transaction system with central locking."""

    def __init__(self, config: SystemConfig, dconfig: DistributedConfig,
                 workload, seed: Optional[int] = None):
        config.validate()
        dconfig.validate()
        self.config = config
        self.dconfig = dconfig
        self.env = Environment()
        self.streams = RandomStreams(seed if seed is not None
                                     else config.seed)
        self.metrics = MetricsCollector(self.env)
        self.storage = StorageSubsystem(self.env, self.streams, config)
        self.bus = MessageBus(self.env, dconfig.coupling)
        self.invalidation_stats = CategoryCounter()
        self.gem: Optional[GlobalExtendedMemory] = None
        if dconfig.gem_capacity > 0:
            self.gem = GlobalExtendedMemory(
                self.env, self.storage.nvem_device, dconfig.gem_capacity
            )
        self.locks = LockManager(self.env, self.metrics)
        self.nodes: List[_Node] = [
            _Node(i, self) for i in range(dconfig.num_nodes)
        ]
        self.tm = _Router(self)
        self.bm = _PrewarmFanout(self)
        self.workload = workload
        self._node_completed_base = [0] * dconfig.num_nodes
        self._started = False

    # -- coherency broadcast ------------------------------------------------
    def broadcast_invalidation(self, tx: Transaction,
                               from_node: int) -> Generator:
        """One message per remote node; stale copies are dropped."""
        keys = list(tx.modified_pages)
        sender = self.nodes[from_node]
        for node in self.nodes:
            if node.node_id == from_node:
                continue
            yield from self.bus.one_way(tx, sender.cpu, node.cpu,
                                        kind="invalidation")
            node.invalidate(keys)
        self.invalidation_stats.add("broadcasts")

    # -- lifecycle (mirrors TransactionSystem) -------------------------------
    def start_workload(self) -> None:
        if not self._started:
            prewarm = getattr(self.workload, "prewarm", None)
            if prewarm is not None:
                prewarm(self)
            self.workload.start(self)
            self._started = True

    def _reset_measurements(self) -> None:
        self.metrics.reset()
        for node in self.nodes:
            node.cpu.reset_stats()
        self.storage.reset_stats()
        self.bus.stats.reset()
        self.invalidation_stats.reset()
        # Post-warm-up baselines, so node_results reports only the
        # measurement window (committed-only, like the shared metrics).
        self._node_completed_base = [n.tm.completed for n in self.nodes]

    def run(self, warmup: float = 5.0, duration: float = 30.0,
            saturation_queue_limit: Optional[int] = None) -> Results:
        # Imported lazily: repro.cluster builds on the distributed
        # message layer, so a top-level import would be circular.
        from repro.cluster.runloop import measured_run

        return measured_run(
            self, warmup, duration, saturation_queue_limit,
            default_queue_limit=4 * self.config.cm.mpl,
        )

    def snapshot(self) -> Results:
        cpu_util = sum(n.cpu.utilization for n in self.nodes) / \
            len(self.nodes)
        return self.metrics.finalize(
            cpu_utilization=cpu_util,
            device_utilization=self.storage.utilization_report(),
        )

    def node_results(self) -> List[NodeResults]:
        """Per-node committed counts for the measurement window only.

        ``tm.completed`` is a lifetime counter that keeps growing
        through warm-up; reporting it raw would disagree with the
        committed-only shared metrics (which reset after warm-up), so
        each node's post-warm-up baseline is subtracted.
        """
        return [
            NodeResults(node_id=n.node_id,
                        committed=n.tm.completed -
                        self._node_completed_base[n.node_id],
                        cpu_utilization=n.cpu.utilization)
            for n in self.nodes
        ]

    def message_stats(self) -> Dict[str, int]:
        return self.bus.stats.as_dict()
