"""Locally distributed transaction processing (data sharing).

The paper's TPSIM "supports centralized and distributed transaction
systems" (§3) but evaluates only the central case; its conclusions
point at global extended memory for locally distributed systems
([BHR91], [Ra91]): speeding up inter-system communication and holding
globally shared data.  This package implements that extension:

* :mod:`repro.distributed.messages` — inter-node messages (CPU overhead
  on both ends + coupling latency; NVEM-based coupling is fast).
* :mod:`repro.distributed.gem` — global extended memory: a shared
  second-level page cache all nodes hit (copies remain in GEM),
  with commit-time invalidation of stale node copies.
* :mod:`repro.distributed.system` — a shared-disk system of N computing
  nodes with a central lock manager and broadcast invalidation.

See ``examples/distributed_study.py`` and
``benchmarks/test_distributed.py`` for the scaling experiment.
"""

from repro.distributed.gem import GlobalExtendedMemory
from repro.distributed.messages import CouplingConfig, MessageBus
from repro.distributed.system import (
    DistributedConfig,
    DistributedSystem,
    NodeResults,
)

__all__ = [
    "CouplingConfig",
    "DistributedConfig",
    "DistributedSystem",
    "GlobalExtendedMemory",
    "MessageBus",
    "NodeResults",
]
