"""Storage cost model (Table 2.1) and cost-effectiveness analysis.

Table 2.1 of the paper gives 1990 prices per megabyte and access times
for the storage hierarchy of large systems:

=================  ==============  =======================
store              price per MB    avg. access per 4KB page
=================  ==============  =======================
extended memory    $1000–2000      10–100 µs
solid-state disk   $500–1000       1–3 ms
disk cache         (≈ SSD)         1–3 ms
disk               $3–20           10–20 ms
main memory        ≈ 2× ext. mem.  (instruction speed)
=================  ==============  =======================

This module prices complete storage configurations, computes
response-time-per-dollar trade-offs, and includes the Gray–Putzolu
five-minute-rule break-even ([GP87], §1): data re-referenced more often
than every *T* seconds is cheaper to keep in memory than on disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "STORES_1990",
    "StorageCost",
    "configuration_cost",
    "cost_effectiveness",
    "five_minute_rule",
]

PAGE_KB = 4.0


@dataclass(frozen=True)
class StorageCost:
    """Cost/latency characteristics of one storage type (Table 2.1)."""

    name: str
    price_per_mb: float
    access_time: float

    def price_per_page(self) -> float:
        return self.price_per_mb * PAGE_KB / 1024.0

    def cost_of_pages(self, pages: int) -> float:
        return pages * self.price_per_page()


#: Mid-range 1990 mainframe prices from Table 2.1 (USD, seconds).
STORES_1990: Dict[str, StorageCost] = {
    "main_memory": StorageCost("main_memory", 3000.0, 1e-7),
    "nvem": StorageCost("nvem", 1500.0, 50e-6),
    "ssd": StorageCost("ssd", 750.0, 1.4e-3),
    "disk_cache": StorageCost("disk_cache", 750.0, 1.4e-3),
    "disk": StorageCost("disk", 10.0, 16.4e-3),
}


def configuration_cost(allocations: Iterable[Tuple[str, int]],
                       stores: Optional[Dict[str, StorageCost]] = None
                       ) -> float:
    """Total price of ``(store, pages)`` allocations in dollars."""
    stores = stores or STORES_1990
    total = 0.0
    for store_name, pages in allocations:
        if pages < 0:
            raise ValueError(f"negative page count for {store_name!r}")
        try:
            store = stores[store_name]
        except KeyError:
            raise KeyError(f"unknown store {store_name!r}") from None
        total += store.cost_of_pages(pages)
    return total


def cost_effectiveness(response_times_ms: Dict[str, float],
                       costs: Dict[str, float]) -> List[Tuple[str, float]]:
    """Rank configurations by response-time improvement per dollar.

    Improvement is measured against the worst (slowest) configuration;
    the returned list is sorted best-first by ms-saved per 1000 dollars.
    The slowest configuration itself is reported with 0 gain.
    """
    if set(response_times_ms) != set(costs):
        raise ValueError("response_times_ms and costs must share keys")
    worst = max(response_times_ms.values())
    ranked = []
    for name, rt in response_times_ms.items():
        gain = worst - rt
        cost = costs[name]
        ranked.append((name, (gain / cost * 1000.0) if cost > 0 else 0.0))
    ranked.sort(key=lambda item: item[1], reverse=True)
    return ranked


def five_minute_rule(page_size_kb: float = PAGE_KB,
                     disk_price: float = 2000.0,
                     disk_accesses_per_second: float = 15.0,
                     memory_price_per_mb: float = 3000.0) -> float:
    """Break-even re-reference interval in seconds ([GP87]).

    A page accessed every ``T`` seconds consumes ``1/T`` of a disk's
    access capacity, i.e. costs ``disk_price / (accesses_per_s * T)``
    when disk-resident, versus ``memory_price_per_page`` when cached.
    The break-even interval is where the two are equal:

        T = disk_price / (accesses_per_s * memory_price_per_page)

    With the paper-era defaults this lands in the few-minutes range —
    Gray and Putzolu's original "five minute" conclusion.
    """
    if min(page_size_kb, disk_price, disk_accesses_per_second,
           memory_price_per_mb) <= 0:
        raise ValueError("all parameters must be positive")
    memory_price_per_page = memory_price_per_mb * page_size_kb / 1024.0
    return disk_price / (disk_accesses_per_second * memory_price_per_page)
