"""Analysis utilities: Table 2.1 cost model and recovery-time estimates."""

from repro.analysis.recovery import (
    RecoveryEstimate,
    RecoveryModel,
    recovery_comparison,
)
from repro.analysis.cost import (
    STORES_1990,
    StorageCost,
    configuration_cost,
    cost_effectiveness,
    five_minute_rule,
)

__all__ = [
    "RecoveryEstimate",
    "RecoveryModel",
    "STORES_1990",
    "StorageCost",
    "configuration_cost",
    "cost_effectiveness",
    "five_minute_rule",
    "recovery_comparison",
]
