"""Crash-recovery time estimates for the update-strategy trade-off.

The paper's FORCE/NOFORCE comparison (§1 fn. 1, §4.4) rests on recovery
behaviour that TPSIM does not simulate: FORCE "permits simpler logging
and recovery procedures", while NOFORCE "requires special checkpointing
techniques and redo recovery after a system crash" [HR83].  This module
quantifies that trade-off with the standard redo-recovery model so the
storage question ("where do log and database live?") can be connected
to restart time:

* **FORCE** — every committed update is in the permanent database; redo
  is limited to transactions in their commit window (negligible).
* **NOFORCE + fuzzy checkpoints** — after a crash, the log since the
  penultimate checkpoint is scanned and the affected pages are redone:
  read the page, apply the log record, write it back.  The expected
  span since the last checkpoint is half the checkpoint interval.

Device speeds come straight from Table 4.1, so the same configuration
constants drive both the performance simulation and the restart
estimate: an NVEM- or SSD-resident log is scanned orders of magnitude
faster than a disk log, and an NVEM-resident database removes the redo
read/write I/O almost entirely — recovery is where the non-volatile
storage types pay off twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.config import UpdateStrategy

__all__ = ["RecoveryEstimate", "RecoveryModel"]


@dataclass(frozen=True)
class RecoveryEstimate:
    """Restart-time breakdown in seconds."""

    log_scan_time: float
    redo_read_time: float
    redo_write_time: float

    @property
    def total(self) -> float:
        return self.log_scan_time + self.redo_read_time + \
            self.redo_write_time

    def summary(self) -> str:
        return (f"restart {self.total:8.2f} s "
                f"(log scan {self.log_scan_time:7.2f}, "
                f"redo reads {self.redo_read_time:7.2f}, "
                f"redo writes {self.redo_write_time:7.2f})")


@dataclass
class RecoveryModel:
    """Analytic redo-recovery model over TPSIM's parameters.

    ``log_page_read_time`` / ``db_page_read_time`` /
    ``db_page_write_time`` are per-page access times of the devices
    holding log and database (Table 4.1 values: 16.4 ms disk, 1.4 ms
    SSD, ~56 µs NVEM).  ``update_tps`` is the update-transaction rate,
    ``log_pages_per_tx`` the paper's one log page per update
    transaction, ``pages_modified_per_tx`` the distinct pages a
    transaction modifies (3 for clustered Debit-Credit).
    """

    update_tps: float
    checkpoint_interval: float = 300.0
    log_page_read_time: float = 0.0064
    db_page_read_time: float = 0.0164
    db_page_write_time: float = 0.0164
    log_pages_per_tx: float = 1.0
    pages_modified_per_tx: float = 3.0
    #: Fraction of redone pages whose disk copy was already current
    #: (written back before the crash by replacement or write buffer).
    already_propagated_fraction: float = 0.5
    #: Effective redo parallelism across disks (sequential scan = 1).
    redo_parallelism: float = 1.0

    def validate(self) -> None:
        if self.update_tps < 0:
            raise ValueError("update_tps must be >= 0")
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        if min(self.log_page_read_time, self.db_page_read_time,
               self.db_page_write_time) < 0:
            raise ValueError("device times must be >= 0")
        if not 0.0 <= self.already_propagated_fraction <= 1.0:
            raise ValueError("already_propagated_fraction not in [0,1]")
        if self.redo_parallelism < 1.0:
            raise ValueError("redo_parallelism must be >= 1")

    # -- estimates ------------------------------------------------------
    def estimate(self, strategy: UpdateStrategy) -> RecoveryEstimate:
        """Expected restart time after a crash at a random instant."""
        self.validate()
        if strategy is UpdateStrategy.FORCE:
            # Only transactions mid-commit need redo: one commit window
            # of work, bounded by a handful of page writes.
            in_flight_pages = self.pages_modified_per_tx
            return RecoveryEstimate(
                log_scan_time=self.log_page_read_time *
                self.log_pages_per_tx,
                redo_read_time=in_flight_pages * self.db_page_read_time,
                redo_write_time=in_flight_pages * self.db_page_write_time,
            )
        # NOFORCE: expected exposure = half a checkpoint interval.
        exposure = self.checkpoint_interval / 2.0
        log_pages = self.update_tps * exposure * self.log_pages_per_tx
        redo_pages = self.update_tps * exposure * \
            self.pages_modified_per_tx * \
            (1.0 - self.already_propagated_fraction)
        return RecoveryEstimate(
            log_scan_time=log_pages * self.log_page_read_time,
            redo_read_time=redo_pages * self.db_page_read_time /
            self.redo_parallelism,
            redo_write_time=redo_pages * self.db_page_write_time /
            self.redo_parallelism,
        )

    def break_even_checkpoint_interval(self,
                                       target_restart: float) -> float:
        """Checkpoint interval keeping NOFORCE restart below a target.

        Inverts the NOFORCE estimate; returns +inf when even continuous
        checkpointing (interval -> 0) cannot reach the target (i.e. the
        target is non-positive).
        """
        self.validate()
        if target_restart <= 0:
            return float("inf")
        per_second_cost = self.update_tps * (
            self.log_pages_per_tx * self.log_page_read_time
            + self.pages_modified_per_tx
            * (1.0 - self.already_propagated_fraction)
            * (self.db_page_read_time + self.db_page_write_time)
            / self.redo_parallelism
        ) / 2.0
        if per_second_cost <= 0:
            return float("inf")
        return target_restart / per_second_cost

    # -- convenience ------------------------------------------------------
    @classmethod
    def for_storage(cls, update_tps: float, log_device: str,
                    db_device: str, **overrides) -> "RecoveryModel":
        """Model with Table 4.1 device times by storage-type name.

        ``log_device``/``db_device`` in {"disk", "ssd", "nvem"}.
        """
        log_times = {"disk": 0.0064, "ssd": 0.0014, "nvem": 56e-6}
        db_times = {"disk": 0.0164, "ssd": 0.0014, "nvem": 56e-6}
        if log_device not in log_times:
            raise ValueError(f"unknown log device {log_device!r}")
        if db_device not in db_times:
            raise ValueError(f"unknown db device {db_device!r}")
        params = dict(
            update_tps=update_tps,
            log_page_read_time=log_times[log_device],
            db_page_read_time=db_times[db_device],
            db_page_write_time=db_times[db_device],
        )
        params.update(overrides)
        return cls(**params)


def recovery_comparison(update_tps: float,
                        checkpoint_interval: float = 300.0
                        ) -> Dict[str, Dict[str, float]]:
    """Restart times for the §4.3 storage allocations, both strategies.

    Returns {allocation: {"force": seconds, "noforce": seconds}}.
    """
    table: Dict[str, Dict[str, float]] = {}
    for name, log_dev, db_dev in (
        ("disk", "disk", "disk"),
        ("ssd", "ssd", "ssd"),
        ("nvem", "nvem", "nvem"),
    ):
        model = RecoveryModel.for_storage(
            update_tps, log_dev, db_dev,
            checkpoint_interval=checkpoint_interval,
        )
        table[name] = {
            "force": model.estimate(UpdateStrategy.FORCE).total,
            "noforce": model.estimate(UpdateStrategy.NOFORCE).total,
        }
    return table
