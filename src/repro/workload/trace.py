"""Database traces: format, I/O and the trace-driven SOURCE (§3.1).

A trace records, per transaction, its type and every page reference
with its access mode.  The trace-driven SOURCE replays transactions in
their original order at a configurable arrival rate (one common rate,
or one rate per transaction type — both as in the paper).

Storage is columnar (numpy arrays) so the million-access trace of
§4.6 fits comfortably in memory; a line-oriented text format
(:func:`write_trace` / :func:`read_trace`) allows interchange with real
trace data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import CCMode, NVEMCachingMode, PartitionConfig
from repro.core.transaction import ObjectRef, Transaction

__all__ = [
    "Trace",
    "TraceFile",
    "TraceTransaction",
    "TraceWorkload",
    "build_trace_partitions",
    "read_trace",
    "write_trace",
]


@dataclass(frozen=True)
class TraceFile:
    """One database file referenced by the trace."""

    name: str
    num_pages: int


class TraceTransaction:
    """A materialized trace transaction: type + (file, page, write) refs."""

    __slots__ = ("type_name", "refs")

    def __init__(self, type_name: str,
                 refs: Sequence[Tuple[int, int, bool]]):
        self.type_name = type_name
        self.refs = list(refs)

    def __len__(self) -> int:
        return len(self.refs)

    @property
    def is_update(self) -> bool:
        return any(w for _, _, w in self.refs)


class Trace:
    """Columnar trace: flat reference arrays + transaction boundaries."""

    def __init__(self, files: List[TraceFile], type_names: List[str],
                 tx_types: np.ndarray, offsets: np.ndarray,
                 file_ids: np.ndarray, pages: np.ndarray,
                 writes: np.ndarray):
        if len(offsets) != len(tx_types) + 1:
            raise ValueError("offsets must have len(tx_types) + 1 entries")
        if not (len(file_ids) == len(pages) == len(writes)):
            raise ValueError("reference columns must have equal length")
        if len(offsets) and offsets[-1] != len(file_ids):
            raise ValueError("last offset must equal the reference count")
        self.files = files
        self.type_names = type_names
        self.tx_types = tx_types
        self.offsets = offsets
        self.file_ids = file_ids
        self.pages = pages
        self.writes = writes

    # -- construction ------------------------------------------------------
    @classmethod
    def from_transactions(cls, files: List[TraceFile],
                          transactions: Sequence[TraceTransaction]) -> "Trace":
        type_names: List[str] = []
        type_index: Dict[str, int] = {}
        tx_types = np.empty(len(transactions), dtype=np.int16)
        offsets = np.zeros(len(transactions) + 1, dtype=np.int64)
        total = sum(len(t) for t in transactions)
        file_ids = np.empty(total, dtype=np.int16)
        pages = np.empty(total, dtype=np.int64)
        writes = np.zeros(total, dtype=bool)
        cursor = 0
        for i, tx in enumerate(transactions):
            idx = type_index.get(tx.type_name)
            if idx is None:
                idx = type_index[tx.type_name] = len(type_names)
                type_names.append(tx.type_name)
            tx_types[i] = idx
            for file_id, page, is_write in tx.refs:
                file_ids[cursor] = file_id
                pages[cursor] = page
                writes[cursor] = is_write
                cursor += 1
            offsets[i + 1] = cursor
        return cls(files, type_names, tx_types, offsets, file_ids, pages,
                   writes)

    def fingerprint_data(self) -> dict:
        """Point-cache identity: file table, type table and content
        digests of the columnar arrays (hashing the raw column bytes is
        exact and avoids materializing a million-access trace as JSON).
        """
        return {
            "files": self.files,
            "type_names": list(self.type_names),
            "columns": {
                "tx_types": self.tx_types,
                "offsets": self.offsets,
                "file_ids": self.file_ids,
                "pages": self.pages,
                "writes": self.writes,
            },
        }

    # -- access ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tx_types)

    def transaction(self, index: int) -> TraceTransaction:
        lo = int(self.offsets[index])
        hi = int(self.offsets[index + 1])
        refs = [
            (int(self.file_ids[j]), int(self.pages[j]), bool(self.writes[j]))
            for j in range(lo, hi)
        ]
        return TraceTransaction(self.type_names[self.tx_types[index]], refs)

    def iter_transactions(self) -> Iterator[TraceTransaction]:
        for i in range(len(self)):
            yield self.transaction(i)

    # -- statistics (the published marginals of §4.6) ------------------------
    @property
    def num_accesses(self) -> int:
        return len(self.file_ids)

    @property
    def write_fraction(self) -> float:
        if not len(self.writes):
            return 0.0
        return float(np.count_nonzero(self.writes)) / len(self.writes)

    @property
    def update_tx_fraction(self) -> float:
        if not len(self):
            return 0.0
        updates = 0
        for i in range(len(self)):
            lo, hi = int(self.offsets[i]), int(self.offsets[i + 1])
            if np.any(self.writes[lo:hi]):
                updates += 1
        return updates / len(self)

    @property
    def distinct_pages(self) -> int:
        combined = self.file_ids.astype(np.int64) * (1 << 40) + self.pages
        return int(np.unique(combined).size)

    @property
    def largest_tx(self) -> int:
        if len(self) == 0:
            return 0
        return int(np.max(np.diff(self.offsets)))

    @property
    def mean_tx_size(self) -> float:
        if len(self) == 0:
            return 0.0
        return self.num_accesses / len(self)


def write_trace(trace: Trace, path: str) -> None:
    """Serialize a trace to the line-oriented interchange format."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# tpsim-trace v1\n")
        for file in trace.files:
            fh.write(f"F {file.name} {file.num_pages}\n")
        for tx in trace.iter_transactions():
            fh.write(f"T {tx.type_name}\n")
            for file_id, page, is_write in tx.refs:
                mode = "W" if is_write else "R"
                fh.write(f"A {file_id} {page} {mode}\n")


def read_trace(path: str) -> Trace:
    """Parse the interchange format back into a :class:`Trace`."""
    files: List[TraceFile] = []
    transactions: List[TraceTransaction] = []
    current_type: Optional[str] = None
    current_refs: List[Tuple[int, int, bool]] = []

    def flush() -> None:
        nonlocal current_refs
        if current_type is not None:
            transactions.append(TraceTransaction(current_type, current_refs))
            current_refs = []

    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if parts[0] == "F" and len(parts) == 3:
                files.append(TraceFile(parts[1], int(parts[2])))
            elif parts[0] == "T" and len(parts) == 2:
                flush()
                current_type = parts[1]
            elif parts[0] == "A" and len(parts) == 4:
                if current_type is None:
                    raise ValueError(
                        f"{path}:{lineno}: access before any transaction"
                    )
                mode = parts[3]
                if mode not in ("R", "W"):
                    raise ValueError(f"{path}:{lineno}: bad mode {mode!r}")
                current_refs.append(
                    (int(parts[1]), int(parts[2]), mode == "W")
                )
            else:
                raise ValueError(f"{path}:{lineno}: unparseable line {line!r}")
    flush()
    return Trace.from_transactions(files, transactions)


def build_trace_partitions(
    trace: Trace,
    allocation: str = "db0",
    cc_mode: CCMode = CCMode.PAGE,
    nvem_caching: NVEMCachingMode = NVEMCachingMode.NONE,
    nvem_write_buffer: bool = False,
) -> List[PartitionConfig]:
    """One partition per trace file (page-granular objects)."""
    return [
        PartitionConfig(
            name=file.name,
            num_objects=file.num_pages,
            block_factor=1,
            cc_mode=cc_mode,
            allocation=allocation,
            nvem_caching=nvem_caching,
            nvem_write_buffer=nvem_write_buffer,
        )
        for file in trace.files
    ]


class TraceWorkload:
    """SOURCE replaying a trace at a Poisson arrival rate.

    ``arrival_rate`` applies to all transactions in original order; or
    pass ``per_type_rates`` (type name -> rate) for independent per-type
    replay, each preserving that type's internal order.  ``limit`` caps
    total submissions; ``loop`` wraps around the trace (useful for
    steady-state measurement windows longer than the trace).
    """

    def __init__(self, trace: Trace, arrival_rate: Optional[float] = None,
                 per_type_rates: Optional[Dict[str, float]] = None,
                 limit: Optional[int] = None, loop: bool = True):
        if (arrival_rate is None) == (per_type_rates is None):
            raise ValueError(
                "specify exactly one of arrival_rate / per_type_rates"
            )
        if arrival_rate is not None and arrival_rate <= 0:
            raise ValueError("arrival rate must be positive")
        self.trace = trace
        self.arrival_rate = arrival_rate
        self.per_type_rates = per_type_rates
        self.limit = limit
        self.loop = loop
        self.submitted = 0
        self._tx_counter = 0

    def fingerprint_data(self) -> dict:
        """Point-cache identity: replay parameters plus the trace
        content (``submitted``/counters are per-run state)."""
        return {
            "trace": self.trace,
            "arrival_rate": self.arrival_rate,
            "per_type_rates": self.per_type_rates,
            "limit": self.limit,
            "loop": self.loop,
        }

    def _to_transaction(self, ttx: TraceTransaction) -> Transaction:
        refs = [
            ObjectRef(file_id, page, page, is_write,
                      tag=self.trace.files[file_id].name)
            for file_id, page, is_write in ttx.refs
        ]
        self._tx_counter += 1
        return Transaction(self._tx_counter, ttx.type_name, refs)

    def _replay(self, system, indices: List[int], rate: float,
                stream: str):
        env = system.env
        mean_gap = 1.0 / rate
        position = 0
        while True:
            if self.limit is not None and self.submitted >= self.limit:
                return
            if position >= len(indices):
                if not self.loop:
                    return
                position = 0
            yield env.timeout(system.streams.exponential(stream, mean_gap))
            ttx = self.trace.transaction(indices[position])
            position += 1
            self.submitted += 1
            system.tm.submit(self._to_transaction(ttx))

    def prewarm(self, system, max_accesses: int = 120_000) -> None:
        """Warm the cache levels by silently replaying trace references."""
        fed = 0
        for i in range(len(self.trace)):
            lo = int(self.trace.offsets[i])
            hi = int(self.trace.offsets[i + 1])
            for j in range(lo, hi):
                system.bm.prewarm_reference(
                    int(self.trace.file_ids[j]),
                    int(self.trace.pages[j]),
                    bool(self.trace.writes[j]),
                )
            fed += hi - lo
            if fed >= max_accesses:
                return

    def start(self, system) -> None:
        if self.arrival_rate is not None:
            indices = list(range(len(self.trace)))
            system.env.process(
                self._replay(system, indices, self.arrival_rate,
                             "trace-arrivals")
            )
            return
        by_type: Dict[str, List[int]] = {}
        for i in range(len(self.trace)):
            name = self.trace.type_names[self.trace.tx_types[i]]
            by_type.setdefault(name, []).append(i)
        for name, rate in self.per_type_rates.items():
            if name not in by_type:
                raise ValueError(f"trace has no transactions of type {name!r}")
            if rate <= 0:
                continue
            system.env.process(
                self._replay(system, by_type[name], rate,
                             f"trace-arrivals-{name}")
            )
