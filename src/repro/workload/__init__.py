"""Workload generation: the three SOURCE variants of §3.1.

* :mod:`repro.workload.synthetic` — the general synthetic model
  (partitions, subpartitions, relative reference matrix).
* :mod:`repro.workload.debit_credit` — Debit-Credit per [An85]/[Gr91].
* :mod:`repro.workload.trace` — trace format + trace-driven SOURCE.
* :mod:`repro.workload.tracegen` — synthetic generator of the
  "real-life" trace used in §4.6/4.7 (substitution; see DESIGN.md).
"""

from repro.workload.base import PoissonArrivals, Workload
from repro.workload.debit_credit import (
    DebitCreditWorkload,
    build_debit_credit_partitions,
)
from repro.workload.synthetic import SyntheticWorkload
from repro.workload.trace import (
    Trace,
    TraceTransaction,
    TraceWorkload,
    build_trace_partitions,
    read_trace,
    write_trace,
)
from repro.workload.tracegen import RealWorkloadProfile, generate_trace

__all__ = [
    "DebitCreditWorkload",
    "PoissonArrivals",
    "RealWorkloadProfile",
    "SyntheticWorkload",
    "Trace",
    "TraceTransaction",
    "TraceWorkload",
    "Workload",
    "build_debit_credit_partitions",
    "build_trace_partitions",
    "generate_trace",
    "read_trace",
    "write_trace",
]
