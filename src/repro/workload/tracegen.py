"""Synthetic generator for the "real-life" trace of §4.6/4.7.

The paper evaluates caching with a proprietary database trace whose
published marginals are:

* more than 17,500 transactions of twelve transaction types;
* about 1 million page accesses (mean ≈ 57 per transaction) with large
  size variation — the largest transaction, an ad-hoc query, performs
  more than 11,000 accesses;
* 13 files, roughly 66,000 distinct pages referenced (database ≈ 4 GB);
* about 20% of transactions perform updates, but only 1.6% of all
  accesses are writes;
* strong locality (a 2000-page main-memory buffer reaches ≈ 84% hits).

The original trace is unavailable, so :func:`generate_trace` produces a
synthetic trace matching those marginals (the substitution is recorded
in DESIGN.md).  Locality is induced by a three-subpartition b/c profile
(hot/warm/cold) shared by all files plus per-type file affinities;
ad-hoc queries are long sequential scans, which also reproduces their
cache-hostile behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.rng import RandomStreams
from repro.workload.trace import Trace, TraceFile, TraceTransaction

__all__ = ["RealWorkloadProfile", "generate_trace"]


@dataclass
class RealWorkloadProfile:
    """Knobs of the synthetic trace, defaulting to §4.6's marginals."""

    num_transactions: int = 17_500
    target_accesses: int = 1_000_000
    num_types: int = 12
    num_files: int = 13
    total_pages: int = 66_000
    adhoc_accesses: int = 11_200
    adhoc_count: int = 2
    update_tx_fraction: float = 0.20
    target_write_fraction: float = 0.016
    #: Hot/warm/cold page fractions and their access probabilities.
    locality_sizes: Tuple[float, float, float] = (0.015, 0.06, 0.925)
    locality_probs: Tuple[float, float, float] = (0.78, 0.15, 0.07)
    #: Relative shares of the 11 non-ad-hoc types (most txs are small).
    type_shares: Tuple[float, ...] = (
        0.22, 0.18, 0.14, 0.12, 0.10, 0.08, 0.06, 0.04, 0.03, 0.02, 0.01,
    )
    #: Relative mean sizes of the non-ad-hoc types (scaled to hit
    #: ``target_accesses``).
    type_size_weights: Tuple[float, ...] = (
        4, 6, 8, 12, 16, 20, 30, 45, 70, 110, 160,
    )
    #: File size proportions (13 entries, normalized to total_pages).
    file_proportions: Tuple[float, ...] = (
        18, 12, 9, 7, 5, 4, 3, 2.5, 2, 1.5, 1, 0.7, 0.3,
    )

    def validate(self) -> None:
        if len(self.type_shares) != self.num_types - 1:
            raise ValueError("type_shares must cover the non-ad-hoc types")
        if len(self.type_size_weights) != self.num_types - 1:
            raise ValueError("type_size_weights must cover non-ad-hoc types")
        if len(self.file_proportions) != self.num_files:
            raise ValueError("file_proportions must have num_files entries")
        if abs(sum(self.locality_sizes) - 1.0) > 1e-9:
            raise ValueError("locality_sizes must sum to 1")
        if abs(sum(self.locality_probs) - 1.0) > 1e-9:
            raise ValueError("locality_probs must sum to 1")
        if not 0 <= self.update_tx_fraction <= 1:
            raise ValueError("update_tx_fraction must be in [0, 1]")


def _file_sizes(profile: RealWorkloadProfile) -> List[int]:
    total_weight = sum(profile.file_proportions)
    sizes = [
        max(64, int(round(profile.total_pages * w / total_weight)))
        for w in profile.file_proportions
    ]
    # Adjust the largest file so the footprint matches exactly.
    sizes[0] += profile.total_pages - sum(sizes)
    return sizes


def _subpartition_bounds(num_pages: int,
                         sizes: Tuple[float, float, float]) -> List[Tuple[int, int]]:
    bounds = []
    start = 0
    for i, frac in enumerate(sizes):
        if i == len(sizes) - 1:
            count = num_pages - start
        else:
            count = max(1, int(round(num_pages * frac)))
        bounds.append((start, start + count - 1))
        start += count
    return bounds


def generate_trace(profile: Optional[RealWorkloadProfile] = None,
                   seed: int = 42) -> Trace:
    """Build a synthetic trace matching the §4.6 marginals."""
    if profile is None:
        profile = RealWorkloadProfile()
    profile.validate()
    streams = RandomStreams(seed)

    file_sizes = _file_sizes(profile)
    files = [
        TraceFile(f"file{idx:02d}", size)
        for idx, size in enumerate(file_sizes)
    ]
    bounds = [
        _subpartition_bounds(size, profile.locality_sizes)
        for size in file_sizes
    ]

    # Per-type file affinities: each non-ad-hoc type spreads its
    # accesses over 2-4 preferred files (inter-transaction-type
    # locality, §3.1).
    num_normal = profile.num_types - 1
    type_files: List[List[int]] = []
    type_file_weights: List[List[float]] = []
    for t in range(num_normal):
        count = streams.uniform_int(f"tg-affinity-count-{t}", 2, 4)
        chosen: List[int] = []
        while len(chosen) < count:
            f = streams.uniform_int(f"tg-affinity-{t}", 0,
                                    profile.num_files - 1)
            if f not in chosen:
                chosen.append(f)
        weights = [
            streams.uniform(f"tg-affweight-{t}", 0.5, 2.0)
            for _ in chosen
        ]
        type_files.append(chosen)
        type_file_weights.append(weights)

    # Scale type mean sizes so expected total accesses match the target.
    normal_txs = profile.num_transactions - profile.adhoc_count
    adhoc_total = profile.adhoc_count * profile.adhoc_accesses
    share_sum = sum(profile.type_shares)
    weighted_mean = sum(
        (s / share_sum) * w
        for s, w in zip(profile.type_shares, profile.type_size_weights)
    )
    scale = (profile.target_accesses - adhoc_total) / (
        normal_txs * weighted_mean
    )
    type_means = [w * scale for w in profile.type_size_weights]

    # Updates are carried by the *small* (interactive) transaction
    # types — long read queries holding X-locks on hot pages would
    # create a contention profile the paper's read-dominated trace does
    # not show.  The write probability inside update transactions is
    # derived from the published 1.6% overall write share.
    num_update_types = max(1, num_normal // 2)
    update_type_share = sum(profile.type_shares[:num_update_types]) / share_sum
    update_prob = min(1.0, profile.update_tx_fraction / update_type_share)
    expected_update_accesses = sum(
        (profile.type_shares[t] / share_sum) * type_means[t] * normal_txs
        for t in range(num_update_types)
    ) * update_prob
    writes_needed = profile.target_write_fraction * profile.target_accesses
    write_prob = min(1.0, writes_needed / max(1.0, expected_update_accesses))

    def pick_page(type_idx: int, file_idx: int) -> int:
        sub = streams.choice_weighted("tg-sub", list(profile.locality_probs))
        low, high = bounds[file_idx][sub]
        return streams.uniform_int(f"tg-page-{file_idx}", low, high)

    def pick_write_page(file_idx: int) -> int:
        # Writes (inserts/updates of individual records) land in the
        # cold tail, not on the read-hot pages: X-locks on the hottest
        # pages would thrash every reader, a behaviour absent from the
        # paper's read-dominated trace.
        low, high = bounds[file_idx][-1]
        return streams.uniform_int(f"tg-wpage-{file_idx}", low, high)

    transactions: List[TraceTransaction] = []

    # Place the ad-hoc queries at deterministic positions in the stream.
    adhoc_positions = set()
    if profile.adhoc_count > 0:
        step = profile.num_transactions // (profile.adhoc_count + 1)
        adhoc_positions = {
            step * (i + 1) for i in range(profile.adhoc_count)
        }

    for i in range(profile.num_transactions):
        if i in adhoc_positions:
            # Ad-hoc query: long sequential scan of the largest file.
            scan_file = 0
            size = profile.adhoc_accesses
            start = streams.uniform_int(
                "tg-adhoc-start", 0, max(0, file_sizes[scan_file] - 1)
            )
            refs = [
                (scan_file, (start + j) % file_sizes[scan_file], False)
                for j in range(size)
            ]
            transactions.append(TraceTransaction("adhoc-query", refs))
            continue
        type_idx = streams.choice_weighted(
            "tg-type", list(profile.type_shares)
        )
        mean = type_means[type_idx]
        size = streams.geometric_like_size(f"tg-size-{type_idx}", mean)
        is_update = type_idx < num_update_types and streams.bernoulli(
            "tg-update", update_prob
        )
        refs = []
        weights = type_file_weights[type_idx]
        affinity = type_files[type_idx]
        for _ in range(size):
            file_idx = affinity[
                streams.choice_weighted(f"tg-file-{type_idx}", weights)
            ]
            is_write = is_update and streams.bernoulli(
                "tg-write", write_prob
            )
            if is_write:
                page = pick_write_page(file_idx)
            else:
                page = pick_page(type_idx, file_idx)
            refs.append((file_idx, page, is_write))
        if is_update and not any(w for _, _, w in refs):
            # Guarantee update transactions write at least once.
            file_idx, page, _ = refs[-1]
            refs[-1] = (file_idx, pick_write_page(file_idx), True)
        transactions.append(TraceTransaction(f"type{type_idx:02d}", refs))

    return Trace.from_transactions(files, transactions)
