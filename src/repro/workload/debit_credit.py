"""Debit-Credit (TPC-A / ET1) workload generation (§3.1, §4.1).

The workload has four record types — ACCOUNT, BRANCH, TELLER, HISTORY —
and a single transaction type performing four update accesses.  The
BRANCH record is selected at random; the TELLER at random among the
tellers of that branch; K% (85 in [An85]) of ACCOUNT accesses go to an
account of the selected branch, the rest to an account of another
branch; HISTORY is a sequential append.

With the paper's clustering option (used in all Debit-Credit
experiments, §4.1), each BRANCH record shares its page with its TELLER
records, so a transaction touches only three distinct pages.  Record
types are always referenced in the same order — ACCOUNT, HISTORY,
BRANCH, TELLER — so no deadlocks occur and the high-traffic
BRANCH/TELLER page is locked last (shortest possible holding time).
HISTORY accesses are synchronized by latches, i.e. no locks (§4.1).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import (
    CCMode,
    NVEMCachingMode,
    PartitionConfig,
)
from repro.core.transaction import ObjectRef, Transaction
from repro.workload.base import PoissonArrivals

__all__ = ["DebitCreditWorkload", "build_debit_credit_partitions"]

#: Partition order produced by :func:`build_debit_credit_partitions`.
P_ACCOUNT = 0
P_BRANCH_TELLER = 1
P_HISTORY = 2


def build_debit_credit_partitions(
    num_branches: int = 500,
    tellers_per_branch: int = 10,
    accounts_per_branch: int = 100_000,
    account_block_factor: int = 10,
    history_block_factor: int = 20,
    allocation: str = "db0",
    bt_allocation: Optional[str] = None,
    history_allocation: Optional[str] = None,
    nvem_caching: NVEMCachingMode = NVEMCachingMode.NONE,
    nvem_write_buffer: bool = False,
) -> List[PartitionConfig]:
    """Partitions for the clustered Debit-Credit database (Table 4.1).

    Clustering stores each BRANCH record with its TELLER records in one
    page: the combined BRANCH/TELLER partition has ``num_branches``
    pages, object 0 of page *b* being the branch record and objects
    1..tellers_per_branch its tellers.
    """
    bt_block = 1 + tellers_per_branch
    history_objects = 10_000_000  # circular append file; size immaterial
    return [
        PartitionConfig(
            name="ACCOUNT",
            num_objects=num_branches * accounts_per_branch,
            block_factor=account_block_factor,
            cc_mode=CCMode.PAGE,
            allocation=allocation,
            nvem_caching=nvem_caching,
            nvem_write_buffer=nvem_write_buffer,
        ),
        PartitionConfig(
            name="BRANCH_TELLER",
            num_objects=num_branches * bt_block,
            block_factor=bt_block,
            cc_mode=CCMode.PAGE,
            allocation=bt_allocation or allocation,
            nvem_caching=nvem_caching,
            nvem_write_buffer=nvem_write_buffer,
        ),
        PartitionConfig(
            name="HISTORY",
            num_objects=history_objects,
            block_factor=history_block_factor,
            cc_mode=CCMode.NONE,  # latched, not locked (§4.1)
            allocation=history_allocation or allocation,
            sequential_append=True,
            nvem_caching=nvem_caching,
            nvem_write_buffer=nvem_write_buffer,
        ),
    ]


class DebitCreditWorkload:
    """SOURCE generating Debit-Credit transactions at a Poisson rate."""

    def __init__(self, arrival_rate: float,
                 num_branches: int = 500,
                 tellers_per_branch: int = 10,
                 accounts_per_branch: int = 100_000,
                 account_block_factor: int = 10,
                 history_block_factor: int = 20,
                 home_account_probability: float = 0.85):
        if arrival_rate <= 0:
            raise ValueError("arrival rate must be positive")
        if not 0.0 <= home_account_probability <= 1.0:
            raise ValueError("home account probability must be in [0, 1]")
        self.arrival_rate = arrival_rate
        self.num_branches = num_branches
        self.tellers_per_branch = tellers_per_branch
        self.accounts_per_branch = accounts_per_branch
        self.account_block_factor = account_block_factor
        self.history_block_factor = history_block_factor
        self.home_account_probability = home_account_probability
        self._bt_block = 1 + tellers_per_branch
        self._history_cursor = 0
        self._history_objects = 10_000_000
        self._tx_counter = 0

    def fingerprint_data(self) -> dict:
        """Simulation-determining parameters for the point cache.

        Only constructor parameters: the mutable generation state
        (history cursor, transaction counter) is reset per run and must
        not distinguish a fresh workload from a used one.
        """
        return {
            "arrival_rate": self.arrival_rate,
            "num_branches": self.num_branches,
            "tellers_per_branch": self.tellers_per_branch,
            "accounts_per_branch": self.accounts_per_branch,
            "account_block_factor": self.account_block_factor,
            "history_block_factor": self.history_block_factor,
            "home_account_probability": self.home_account_probability,
        }

    # -- record selection ------------------------------------------------
    def _pick_account(self, streams, branch: int) -> int:
        if streams.bernoulli("dc-home", self.home_account_probability) or \
                self.num_branches == 1:
            home = branch
        else:
            # An account of *another* branch.
            other = streams.uniform_int("dc-other-branch", 0,
                                        self.num_branches - 2)
            home = other if other < branch else other + 1
        offset = streams.uniform_int("dc-account", 0,
                                     self.accounts_per_branch - 1)
        return home * self.accounts_per_branch + offset

    def make_transaction(self, streams) -> Transaction:
        branch = streams.uniform_int("dc-branch", 0, self.num_branches - 1)
        teller = streams.uniform_int("dc-teller", 0,
                                     self.tellers_per_branch - 1)
        account = self._pick_account(streams, branch)
        history = self._history_cursor
        self._history_cursor = (self._history_cursor + 1) % \
            self._history_objects

        bt_page = branch  # clustering: one page per branch
        branch_obj = branch * self._bt_block
        teller_obj = branch_obj + 1 + teller

        refs = [
            ObjectRef(P_ACCOUNT, account,
                      account // self.account_block_factor, True,
                      tag="ACCOUNT"),
            ObjectRef(P_HISTORY, history,
                      history // self.history_block_factor, True,
                      tag="HISTORY"),
            ObjectRef(P_BRANCH_TELLER, branch_obj, bt_page, True,
                      tag="BRANCH"),
            ObjectRef(P_BRANCH_TELLER, teller_obj, bt_page, True,
                      tag="TELLER"),
        ]
        self._tx_counter += 1
        return Transaction(self._tx_counter, "debit-credit", refs)

    # -- warm start ------------------------------------------------------
    def _prewarm_pages(self, streams):
        """One transaction's page numbers without building the objects.

        Performs *exactly* the draws of :meth:`make_transaction` (branch,
        teller, account — the teller draw is consumed even though only
        pages matter) and advances the same counters, so a prewarm
        replay leaves the RNG streams and transaction ids bit-identical
        to one that materialized full transactions.
        """
        branch = streams.uniform_int("dc-branch", 0, self.num_branches - 1)
        streams.uniform_int("dc-teller", 0, self.tellers_per_branch - 1)
        account = self._pick_account(streams, branch)
        history = self._history_cursor
        self._history_cursor = (self._history_cursor + 1) % \
            self._history_objects
        self._tx_counter += 1
        return (account // self.account_block_factor,
                history // self.history_block_factor,
                branch)

    def prewarm(self, system) -> None:
        """Warm all cache levels with a representative reference stream.

        Replays enough synthetic transactions through the buffer
        manager's prewarm path to fill the main-memory buffer (and any
        second-level caches) to LRU steady state: hot BRANCH/TELLER and
        HISTORY pages resident, the remaining frames churning with dirty
        ACCOUNT pages — the state §4's measurements assume.  All four
        Debit-Credit references are writes, and clustering makes the
        BRANCH and TELLER references hit the same page.
        """
        capacity = system.config.cm.buffer_size
        second_level = max(system.config.cm.nvem_cache_size,
                           max((u.cache_size for u in
                                system.config.disk_units), default=0))
        n_txs = max(4000, 3 * (capacity + second_level))
        streams = system.streams
        prewarm_ref = system.bm.prewarm_reference
        for _ in range(n_txs):
            acct_page, hist_page, bt_page = self._prewarm_pages(streams)
            prewarm_ref(P_ACCOUNT, acct_page, True)
            prewarm_ref(P_HISTORY, hist_page, True)
            prewarm_ref(P_BRANCH_TELLER, bt_page, True)
            prewarm_ref(P_BRANCH_TELLER, bt_page, True)

    # -- SOURCE ------------------------------------------------------------
    def start(self, system) -> None:
        source = PoissonArrivals(
            rate=self.arrival_rate,
            factory=lambda _n: self.make_transaction(system.streams),
            stream_name="arrivals-debit-credit",
        )
        source.start(system)
