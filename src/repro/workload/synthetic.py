"""The general synthetic workload model (§3.1, Tables 3.1/3.2).

The database is a set of partitions; each partition's internal access
distribution follows a generalized b/c rule expressed as subpartitions
with relative sizes and access probabilities.  Transaction types are
characterized by arrival rate, mean size, write probability, sequential
or random access, fixed or variable (exponential) size, and a row of
the relative reference matrix assigning access fractions to partitions.

Example — the §4.7 contention workload::

    partitions = [
        PartitionConfig("hot", num_objects=10_000, block_factor=10, ...),
        PartitionConfig("cold", num_objects=100_000, block_factor=10, ...),
    ]
    tx = TransactionTypeConfig(
        "update", arrival_rate=100.0, tx_size=10, write_prob=1.0,
        reference_matrix={"hot": 0.8, "cold": 0.2}, var_size=True,
    )
    workload = SyntheticWorkload(config)
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import PartitionConfig, SystemConfig, TransactionTypeConfig
from repro.core.transaction import ObjectRef, Transaction
from repro.workload.base import PoissonArrivals

__all__ = ["SyntheticWorkload"]


class _PartitionSampler:
    """Pre-computed subpartition ranges for object selection."""

    def __init__(self, index: int, part: PartitionConfig):
        self.index = index
        self.part = part
        total_size = sum(sp.size for sp in part.subpartitions)
        self.ranges: List[Tuple[int, int]] = []
        self.weights: List[float] = []
        start = 0
        remaining = part.num_objects
        for i, sp in enumerate(part.subpartitions):
            if i == len(part.subpartitions) - 1:
                count = remaining
            else:
                count = int(round(part.num_objects * sp.size / total_size))
                count = min(count, remaining)
            count = max(count, 1) if remaining > 0 else 0
            self.ranges.append((start, start + count - 1))
            self.weights.append(sp.access_prob)
            start += count
            remaining -= count
        #: Next object for sequential-append partitions.
        self.append_cursor = 0

    def sample_object(self, streams, stream_name: str) -> int:
        if len(self.ranges) == 1:
            low, high = self.ranges[0]
            return streams.uniform_int(stream_name, low, high)
        idx = streams.choice_weighted(stream_name + "-sub", self.weights)
        low, high = self.ranges[idx]
        return streams.uniform_int(stream_name, low, high)

    def append_object(self) -> int:
        obj = self.append_cursor
        self.append_cursor = (self.append_cursor + 1) % max(
            self.part.num_objects, 1
        )
        return obj


class SyntheticWorkload:
    """SOURCE for the general synthetic model."""

    def __init__(self, config: SystemConfig):
        if not config.tx_types:
            raise ValueError("synthetic workload needs tx_types in the config")
        self.config = config
        self._samplers = [
            _PartitionSampler(i, part)
            for i, part in enumerate(config.partitions)
        ]
        self._by_name = {
            part.name: sampler
            for part, sampler in zip(config.partitions, self._samplers)
        }
        self._tx_counter = 0

    def fingerprint_data(self) -> dict:
        """Point-cache identity: the config fully describes this source
        (partitions, tx types, rates); samplers and counters derive
        from it."""
        return {"config": self.config}

    # -- transaction construction ------------------------------------------
    def _tx_size(self, streams, tx_type: TransactionTypeConfig) -> int:
        if tx_type.var_size:
            return streams.geometric_like_size(
                f"size-{tx_type.name}", tx_type.tx_size
            )
        return max(1, int(round(tx_type.tx_size)))

    def _build_sequential(self, streams, tx_type: TransactionTypeConfig,
                          size: int) -> List[ObjectRef]:
        """Sequential access: one partition, consecutive objects (§3.1)."""
        names = list(tx_type.reference_matrix.keys())
        weights = [tx_type.reference_matrix[n] for n in names]
        chosen = names[streams.choice_weighted(
            f"seq-part-{tx_type.name}", weights
        )]
        sampler = self._by_name[chosen]
        part = sampler.part
        first = sampler.sample_object(streams, f"seq-obj-{tx_type.name}")
        refs = []
        for i in range(size):
            obj = (first + i) % part.num_objects
            is_write = streams.bernoulli(
                f"write-{tx_type.name}", tx_type.write_prob
            )
            refs.append(ObjectRef(sampler.index, obj,
                                  part.page_of_object(obj), is_write))
        return refs

    def _build_random(self, streams, tx_type: TransactionTypeConfig,
                      size: int) -> List[ObjectRef]:
        names = list(tx_type.reference_matrix.keys())
        weights = [tx_type.reference_matrix[n] for n in names]
        refs = []
        for _ in range(size):
            chosen = names[streams.choice_weighted(
                f"part-{tx_type.name}", weights
            )]
            sampler = self._by_name[chosen]
            part = sampler.part
            if part.sequential_append:
                obj = sampler.append_object()
            else:
                obj = sampler.sample_object(streams, f"obj-{tx_type.name}")
            is_write = streams.bernoulli(
                f"write-{tx_type.name}", tx_type.write_prob
            )
            refs.append(ObjectRef(sampler.index, obj,
                                  part.page_of_object(obj), is_write))
        return refs

    def make_transaction(self, streams,
                         tx_type: TransactionTypeConfig) -> Transaction:
        size = self._tx_size(streams, tx_type)
        if tx_type.sequential:
            refs = self._build_sequential(streams, tx_type, size)
        else:
            refs = self._build_random(streams, tx_type, size)
        self._tx_counter += 1
        return Transaction(self._tx_counter, tx_type.name, refs)

    # -- warm start ------------------------------------------------------
    def prewarm(self, system, n_txs: Optional[int] = None) -> None:
        """Warm cache levels with a representative synthetic stream."""
        if n_txs is None:
            n_txs = max(4000, 3 * system.config.cm.buffer_size)
        rates = [t.arrival_rate for t in self.config.tx_types]
        total = sum(rates)
        if total <= 0:
            return
        for _ in range(n_txs):
            idx = system.streams.choice_weighted("prewarm-type", rates)
            tx = self.make_transaction(system.streams,
                                       self.config.tx_types[idx])
            for ref in tx.refs:
                system.bm.prewarm_reference(ref.partition_index,
                                            ref.page_no, ref.is_write)

    # -- SOURCE ------------------------------------------------------------
    def start(self, system) -> None:
        for tx_type in self.config.tx_types:
            if tx_type.arrival_rate <= 0:
                continue
            source = PoissonArrivals(
                rate=tx_type.arrival_rate,
                factory=lambda _n, tt=tx_type: self.make_transaction(
                    system.streams, tt
                ),
                stream_name=f"arrivals-{tx_type.name}",
            )
            source.start(system)
