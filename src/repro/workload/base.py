"""SOURCE infrastructure shared by all workload generators.

A workload is anything with a ``start(system)`` method that spawns
arrival processes on the system's environment and submits
:class:`~repro.core.transaction.Transaction` objects to the transaction
manager.  :class:`PoissonArrivals` is the common open-system arrival
machinery (exponential interarrival times at a configured rate).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional, Protocol, runtime_checkable

from repro.core.transaction import Transaction

__all__ = ["PoissonArrivals", "Workload"]


@runtime_checkable
class Workload(Protocol):
    """Protocol for SOURCE components.

    A workload that wants its sweep points to be cacheable by the
    incremental experiment store should additionally expose
    ``fingerprint_data() -> dict`` returning exactly its
    simulation-determining parameters (constructor arguments, not
    mutable generation counters); see :mod:`repro.core.fingerprint`.
    Workloads without it fall back to a walk of their public attributes,
    and workloads that cannot be fingerprinted at all are simply
    recomputed on every run (never cached) — caching is strictly
    opt-in-by-representation, never wrong.
    """

    def start(self, system) -> None:
        """Spawn arrival processes on ``system`` (a TransactionSystem)."""
        ...  # pragma: no cover - protocol definition


class PoissonArrivals:
    """Open-system arrivals: exponential interarrival times.

    ``factory(tx_id)`` builds the next transaction; the stream name
    isolates this source's randomness from everything else.
    """

    def __init__(self, rate: float, factory: Callable[[int], Transaction],
                 stream_name: str = "arrivals",
                 limit: Optional[int] = None):
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate!r}")
        self.rate = rate
        self.factory = factory
        self.stream_name = stream_name
        self.limit = limit
        self.generated = 0

    def process(self, system) -> Generator:
        env = system.env
        streams = system.streams
        mean_gap = 1.0 / self.rate
        while self.limit is None or self.generated < self.limit:
            yield env.timeout(streams.exponential(self.stream_name, mean_gap))
            tx = self.factory(self.generated)
            self.generated += 1
            system.tm.submit(tx)

    def start(self, system) -> None:
        system.env.process(self.process(system))
