"""Observability layer: span tracing, telemetry, trace files.

Default-off and side-channel only — enabling any part of this package
never changes what the simulation computes (the fig4_1 golden checksum
is pinned with tracing both off and on).  See ``README.md`` §
Observability for the architecture.
"""

from repro.trace.export import (
    SCHEMA,
    read_trace,
    validate_record,
    write_perfetto,
    write_trace,
)
from repro.trace.run import run_traced, trace_points
from repro.trace.summary import (
    attribute,
    check_span_accounting,
    per_tx_spans,
    render_attribution,
)
from repro.trace.telemetry import TelemetrySampler
from repro.trace.tracer import (
    DETAIL_SPANS,
    PHASE_SPANS,
    ROOT_SPAN,
    Span,
    Tracer,
)

__all__ = [
    "DETAIL_SPANS",
    "PHASE_SPANS",
    "ROOT_SPAN",
    "SCHEMA",
    "Span",
    "TelemetrySampler",
    "Tracer",
    "attribute",
    "check_span_accounting",
    "per_tx_spans",
    "read_trace",
    "render_attribution",
    "run_traced",
    "trace_points",
    "validate_record",
    "write_perfetto",
    "write_trace",
]
