"""Trace serialization: JSONL span streams and Perfetto conversion.

The on-disk format is line-delimited JSON (``repro-trace/1``):

* one ``{"type": "header", ...}`` line — experiment id, profile,
  sampling rate, seed;
* one ``{"type": "point", "point": i, ...}`` line per sweep point —
  series label, x value, warm-up boundary, measured response time,
  span-drop counter;
* ``{"type": "span", "point": i, "name", "tx", "node", "t0", "t1",
  "attrs"}`` lines for every recorded span of that point (``attrs``
  omitted when empty, ``tx`` is ``null`` for system spans such as
  restart replay).

:func:`write_perfetto` converts a stream to the Chrome/Perfetto
``trace_event`` JSON format — complete ``"X"`` events with
microsecond timestamps, one process per sweep point and one thread
per transaction — loadable directly in https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

__all__ = [
    "SCHEMA",
    "read_trace",
    "validate_record",
    "write_perfetto",
    "write_trace",
]

SCHEMA = "repro-trace/1"

#: Required keys per record type (the CI smoke validates against this).
_REQUIRED = {
    "header": ("schema", "experiment", "profile", "sample", "seed"),
    "point": ("point", "series", "x", "measure_start", "response_ms",
              "committed", "dropped"),
    "span": ("point", "name", "tx", "node", "t0", "t1"),
}


def validate_record(record: Dict) -> None:
    """Raise ``ValueError`` unless ``record`` is schema-conformant."""
    kind = record.get("type")
    required = _REQUIRED.get(kind)
    if required is None:
        raise ValueError(f"unknown trace record type {kind!r}")
    missing = [key for key in required if key not in record]
    if missing:
        raise ValueError(f"{kind} record missing {missing}")
    if kind == "header" and record["schema"] != SCHEMA:
        raise ValueError(f"unsupported trace schema {record['schema']!r}")
    if kind == "span" and not record["t1"] >= record["t0"]:
        raise ValueError(
            f"span {record['name']!r} ends before it starts "
            f"({record['t0']} > {record['t1']})"
        )


def span_record(point: int, span) -> Dict:
    """One tracer span tuple as its JSONL record."""
    name, tx_id, node, t0, t1, attrs = span
    record = {"type": "span", "point": point, "name": name, "tx": tx_id,
              "node": node, "t0": t0, "t1": t1}
    if attrs is not None:
        record["attrs"] = attrs
    return record


def write_trace(path: str, header: Dict, points: Iterable[Dict]) -> int:
    """Write a full trace stream; returns the number of span lines.

    ``points`` yields dicts with the point metadata plus a ``spans``
    list of tracer tuples (the metadata keys land in the point record).
    """
    written = 0
    with open(path, "w", encoding="utf-8") as fh:
        head = {"type": "header", "schema": SCHEMA}
        head.update(header)
        fh.write(json.dumps(head) + "\n")
        for meta in points:
            spans = meta.pop("spans")
            record = {"type": "point"}
            record.update(meta)
            fh.write(json.dumps(record) + "\n")
            index = record["point"]
            for span in spans:
                fh.write(json.dumps(span_record(index, span)) + "\n")
                written += 1
    return written


def read_trace(path: str, validate: bool = False):
    """Load a JSONL trace: ``(header, points, spans_by_point)``."""
    header: Optional[Dict] = None
    points: List[Dict] = []
    spans: Dict[int, List[Dict]] = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if validate:
                validate_record(record)
            kind = record.get("type")
            if kind == "header":
                header = record
            elif kind == "point":
                points.append(record)
                spans.setdefault(record["point"], [])
            elif kind == "span":
                spans.setdefault(record["point"], []).append(record)
    if header is None:
        raise ValueError(f"{path}: no trace header record")
    return header, points, spans


def write_perfetto(trace_path: str, out_path: str) -> int:
    """Convert a JSONL trace to Perfetto ``trace_event`` JSON.

    Returns the number of events written.  Timestamps are simulation
    microseconds; each sweep point becomes a process (named after its
    series and x value), each transaction a thread, so the per-phase
    spans of one transaction stack on its own track.
    """
    header, points, spans = read_trace(trace_path)
    events = []
    for point in points:
        pid = point["point"]
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": f"{header['experiment']} "
                             f"{point['series']} x={point['x']}"},
        })
        for record in spans.get(pid, ()):
            tx = record["tx"]
            event = {
                "ph": "X",
                "name": record["name"],
                "cat": "repro",
                "pid": pid,
                "tid": tx if tx is not None else 0,
                "ts": record["t0"] * 1e6,
                "dur": (record["t1"] - record["t0"]) * 1e6,
            }
            args = {"node": record["node"]}
            if "attrs" in record:
                args["attrs"] = record["attrs"]
            event["args"] = args
            events.append(event)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": SCHEMA,
                      "experiment": header["experiment"]},
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return len(events)
