"""Traced experiment runs: same plan, same seeds, plus a span stream.

:func:`run_traced` executes a registered experiment through the normal
:class:`~repro.experiments.api.ExperimentRunner` — identical profile
grid, :func:`point_seed` derivation and saturation truncation — with a
``configure`` hook swapping each point's config for a tracing-enabled
copy and an ``observe`` hook harvesting the spans after every point.
Because tracing is a pure side channel (the sampler draws from its own
RNG substream and the span buffer is outside the simulation state),
the returned :class:`ExperimentResult` is bit-identical to an untraced
run — the golden-checksum test pins this.

The span stream is written as JSONL (:mod:`repro.trace.export`); the
``repro trace`` CLI fronts this module.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.trace.export import write_trace
from repro.trace.summary import attribute

__all__ = ["run_traced", "trace_points"]


def _traced_config(config, sample: int, telemetry: float,
                   latency_detail: bool):
    """A copy of ``config`` with tracing switched on.

    Works on both :class:`SystemConfig` (owns ``trace`` directly) and
    :class:`ClusterConfig` (carries it on the per-node template).
    """
    if hasattr(config, "trace"):
        trace = replace(config.trace, enabled=True, sample=sample,
                        telemetry_interval=telemetry,
                        latency_detail=latency_detail)
        return replace(config, trace=trace)
    if hasattr(config, "node"):
        trace = replace(config.node.trace, enabled=True, sample=sample,
                        telemetry_interval=telemetry,
                        latency_detail=latency_detail)
        return replace(config, node=replace(config.node, trace=trace))
    raise TypeError(
        f"config {type(config).__name__} has no trace settings"
    )


def run_traced(experiment_id: str,
               out_path: str,
               profile: str = "fast",
               sample: int = 1,
               seed: Optional[int] = None,
               telemetry: float = 0.0,
               latency_detail: bool = False):
    """Run one experiment with tracing on; write the JSONL stream.

    Returns ``(result, header, points)`` where ``result`` is the
    ordinary :class:`ExperimentResult` (identical to an untraced run)
    and ``points`` are the per-point metadata dicts written to
    ``out_path`` (with their ``spans`` lists already consumed).
    """
    from repro.experiments.api import (
        ExperimentRunner,
        get_experiment,
        load_builtin_specs,
    )

    load_builtin_specs()
    spec = get_experiment(experiment_id)

    observed: List[Dict] = []

    def configure(config):
        return _traced_config(config, sample, telemetry, latency_detail)

    def observe(task, system, results):
        tracer = getattr(system, "tracer", None)
        if tracer is None:  # pragma: no cover - configure guarantees one
            raise RuntimeError("traced run produced a system w/o tracer")
        observed.append({
            "x": task[0],
            "measure_start": tracer.measure_start,
            "response_ms": results.response_time_ms,
            "committed": results.committed,
            "dropped": tracer.dropped,
            "spans": list(tracer.spans),
            # Saturated points that commit nothing are evaluated but
            # never plotted; flag them so the mapping below skips them.
            "unplotted": bool(results.saturated
                              and results.committed == 0),
        })

    runner = ExperimentRunner(seed=seed, configure=configure,
                              observe=observe)
    result = runner.run_one(spec, profile=profile)

    points: List[Dict] = []
    cursor = 0
    for series in result.series:
        for point in series.points:
            entry = observed[cursor]
            cursor += 1
            points.append({
                "point": len(points),
                "series": series.label,
                "x": point.x,
                "measure_start": entry["measure_start"],
                "response_ms": entry["response_ms"],
                "committed": entry["committed"],
                "dropped": entry["dropped"],
                "spans": entry["spans"],
            })
        # A truncating curve may have evaluated one zero-commit
        # saturated point past its plotted end — skip it.
        if cursor < len(observed) and observed[cursor]["unplotted"]:
            cursor += 1

    header = {
        "experiment": spec.id,
        "profile": profile,
        "sample": sample,
        "seed": seed if seed is not None else spec.seed,
    }
    write_trace(out_path, header,
                [dict(p, spans=list(p["spans"])) for p in points])
    return result, header, points


def trace_points(path: str, validate: bool = False
                 ) -> List[Tuple[Dict, Dict]]:
    """Load a trace file and attribute every point.

    Returns ``[(point_record, attribution_summary), ...]`` in point
    order — the data behind ``repro trace summary``.
    """
    from repro.trace.export import read_trace

    _header, points, spans = read_trace(path, validate=validate)
    out = []
    for point in points:
        summary = attribute(spans.get(point["point"], ()),
                            point["measure_start"])
        out.append((point, summary))
    return out
