"""Phase attribution: where a traced transaction's time went.

The TM's phase spans tile a committed transaction's whole
arrival-to-commit interval (see :mod:`repro.trace.tracer`), so summing
them per phase and dividing by the traced-commit count yields a
latency-attribution table whose rows *must* add up to the traced mean
response time — any residual beyond float noise means an instrumented
segment is missing.  :func:`check_span_accounting` asserts exactly
that (plus per-resource non-overlap), and is what the property test
and the CI trace smoke call.

Attribution only trusts root (``tx``) spans starting at or after the
warm-up boundary: earlier arrivals had part of their children cleared
with the warm-up spans.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.trace.tracer import PHASE_SPANS, ROOT_SPAN

__all__ = [
    "attribute",
    "check_span_accounting",
    "per_tx_spans",
    "render_attribution",
]

#: Display order of the attribution rows (phases not listed sort last).
_PHASE_ORDER = ["queue", "cpu.bot", "lock", "cpu.ref", "fix", "cpu.eot",
                "2pc.work", "2pc.prepare", "2pc.decision", "2pc.notify",
                "commit", "backoff"]


def _fields(span) -> Tuple[str, Optional[int], int, float, float, object]:
    """Normalize a span (tracer tuple or JSONL dict) to a tuple."""
    if isinstance(span, dict):
        return (span["name"], span["tx"], span["node"], span["t0"],
                span["t1"], span.get("attrs"))
    return span


def per_tx_spans(spans: Iterable,
                 measure_start: float = 0.0) -> Dict[int, Dict]:
    """Group spans by transaction for every trusted root span.

    Returns ``tx_id -> {"root": (t0, t1), "phases": [(name, t0, t1)],
    "details": [(name, t0, t1, attrs)]}``.
    """
    normalized = [_fields(span) for span in spans]
    out: Dict[int, Dict] = {}
    for name, tx_id, _node, t0, t1, _attrs in normalized:
        if name == ROOT_SPAN and tx_id is not None and t0 >= measure_start:
            out[tx_id] = {"root": (t0, t1), "phases": [], "details": []}
    for name, tx_id, _node, t0, t1, attrs in normalized:
        entry = out.get(tx_id)
        if entry is None or name == ROOT_SPAN:
            continue
        if name in PHASE_SPANS:
            entry["phases"].append((name, t0, t1))
        else:
            entry["details"].append((name, t0, t1, attrs))
    return out


def attribute(spans: Iterable, measure_start: float = 0.0) -> Dict:
    """The per-phase latency-attribution summary of one sweep point.

    ``phases`` maps phase name to mean seconds per traced committed
    transaction; their sum plus ``residual`` equals ``response_mean``
    (the traced transactions' mean response time) by construction.
    ``details`` aggregates the nested diagnostic spans, with log
    forces split by placement (``log.force[log_nvem]`` vs
    ``log.force[log_disk]`` is the §4 NVEM-vs-disk commit gap).
    """
    grouped = per_tx_spans(spans, measure_start)
    n = len(grouped)
    phase_totals: Dict[str, float] = {}
    detail: Dict[str, Dict[str, float]] = {}
    response_total = 0.0
    for entry in grouped.values():
        t0, t1 = entry["root"]
        response_total += t1 - t0
        for name, p0, p1 in entry["phases"]:
            phase_totals[name] = phase_totals.get(name, 0.0) + (p1 - p0)
        for name, d0, d1, attrs in entry["details"]:
            key = name
            if name == "log.force" and isinstance(attrs, str):
                key = f"log.force[{attrs}]"
            bucket = detail.get(key)
            if bucket is None:
                bucket = detail[key] = {"count": 0.0, "total": 0.0}
            bucket["count"] += 1
            bucket["total"] += d1 - d0
    response_mean = response_total / n if n else 0.0
    phases = {name: total / n for name, total in phase_totals.items()} \
        if n else {}
    residual = response_mean - sum(phases.values())
    for bucket in detail.values():
        bucket["mean"] = (bucket["total"] / bucket["count"]
                          if bucket["count"] else 0.0)
    return {
        "traced_tx": n,
        "response_mean": response_mean,
        "phases": phases,
        "residual": residual,
        "details": detail,
    }


def check_span_accounting(spans: Iterable, measure_start: float = 0.0,
                          tolerance: float = 1e-9) -> Dict:
    """Verify the two span invariants over every trusted transaction.

    1. Phase spans of one transaction never overlap each other.
    2. Their durations sum to the root span's duration within
       ``tolerance`` seconds.

    Returns ``{"transactions", "max_residual", "overlaps"}``; raises
    ``AssertionError`` on any violation (so it doubles as a CI gate).
    """
    grouped = per_tx_spans(spans, measure_start)
    max_residual = 0.0
    overlaps: List[Tuple[int, str, str]] = []
    for tx_id, entry in grouped.items():
        t0, t1 = entry["root"]
        ordered = sorted(entry["phases"], key=lambda s: (s[1], s[2]))
        child_sum = 0.0
        prev_name, prev_end = None, t0 - tolerance
        for name, p0, p1 in ordered:
            child_sum += p1 - p0
            if p0 < prev_end - tolerance:
                overlaps.append((tx_id, prev_name, name))
            prev_name, prev_end = name, p1
            if p0 < t0 - tolerance or p1 > t1 + tolerance:
                overlaps.append((tx_id, ROOT_SPAN, name))
        residual = abs((t1 - t0) - child_sum)
        if residual > max_residual:
            max_residual = residual
    assert not overlaps, f"overlapping phase spans: {overlaps[:5]}"
    assert max_residual <= tolerance, (
        f"phase spans do not sum to response time "
        f"(max residual {max_residual:.3e} s > {tolerance:.1e} s)"
    )
    return {"transactions": len(grouped), "max_residual": max_residual,
            "overlaps": overlaps}


def render_attribution(label: str, summary: Dict,
                       measured_ms: Optional[float] = None) -> str:
    """Human-readable attribution table for one sweep point."""
    lines = [f"{label}: {summary['traced_tx']} traced tx, "
             f"mean response {summary['response_mean'] * 1e3:.3f} ms"
             + (f" (measured {measured_ms:.3f} ms)"
                if measured_ms is not None else "")]
    phases = summary["phases"]
    total = summary["response_mean"]
    ordered = sorted(
        phases.items(),
        key=lambda item: (_PHASE_ORDER.index(item[0])
                          if item[0] in _PHASE_ORDER
                          else len(_PHASE_ORDER), item[0]),
    )
    lines.append(f"  {'phase':<14} {'ms/tx':>10} {'share':>8}")
    for name, seconds in ordered:
        share = seconds / total * 100.0 if total else 0.0
        lines.append(f"  {name:<14} {seconds * 1e3:>10.4f} {share:>7.1f}%")
    lines.append(f"  {'residual':<14} {summary['residual'] * 1e3:>10.4f}")
    lines.append(f"  {'sum':<14} {total * 1e3:>10.4f}")
    details = summary["details"]
    if details:
        lines.append(f"  {'detail':<22} {'count':>7} {'mean ms':>9}")
        for name in sorted(details):
            bucket = details[name]
            lines.append(f"  {name:<22} {int(bucket['count']):>7} "
                         f"{bucket['mean'] * 1e3:>9.4f}")
    return "\n".join(lines)
