"""Span recording for the observability layer.

A *span* is one timed interval of a transaction's life —
``(name, tx_id, node, t0, t1, attrs)`` in simulation seconds.  The
instrumented components (TM lifecycle, lock manager, buffer manager,
2PC state machines, restart/media replay) each hold a ``tracer``
attribute that is ``None`` unless the run enabled tracing, so the
disabled path costs one attribute test per *transaction* (never per
event) and the kernel in ``sim/core.py`` is untouched.

Span names come in two layers:

* **phase spans** (:data:`PHASE_SPANS`) — contiguous, per-transaction,
  mutually non-overlapping segments emitted by the TM state machines.
  For a committed transaction they tile the whole arrival-to-commit
  interval, so summing them reproduces the measured response time
  exactly (the invariant the attribution table and the span-accounting
  property test rely on).
* **detail spans** — nested inside phases (device reads, log forces,
  2PC piece work, restart replay).  They carry the *why* (which log
  placement, which device level) and may overlap phase spans freely.

Sampling draws from a dedicated ``trace-sample`` substream of the
run's :class:`~repro.sim.rng.RandomStreams`, so tracing N-th
transactions never perturbs the variates any simulation component
sees — results stay bit-identical with tracing off, sampled, or full.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = ["DETAIL_SPANS", "PHASE_SPANS", "ROOT_SPAN", "Span", "Tracer"]

#: One recorded span: (name, tx_id, node, t0, t1, attrs).
Span = Tuple[str, Optional[int], int, float, float, object]

#: The per-transaction root span (arrival to commit).
ROOT_SPAN = "tx"

#: Contiguous per-transaction segments; for a committed transaction
#: they are non-overlapping and sum to its response time.
PHASE_SPANS = frozenset({
    "queue",          # input-queue (and offline-gate) wait before admission
    "cpu.bot",        # begin-of-transaction CPU burst (wait + service)
    "lock",           # lock wait (emitted by the lock manager's wait path)
    "cpu.ref",        # per-reference CPU burst
    "fix",            # buffer-miss page fix (redo gate + fetch)
    "cpu.eot",        # end-of-transaction CPU burst
    "commit",         # commit phase 1 (log write / force, FORCE write-back)
    "backoff",        # randomized restart backoff after a deadlock abort
    "2pc.work",       # coordinator: farm out remote pieces, await work
    "2pc.prepare",    # coordinator: PREPARE round trip, votes collected
    "2pc.decision",   # coordinator: decision record forced via home log
    "2pc.notify",     # coordinator: decision messages to participants
})

#: Nested diagnostic spans (device/log/2PC-piece/recovery detail).
DETAIL_SPANS = frozenset({
    "io.read",        # one database-page fetch, attrs = storage level
    "redo.wait",      # online-redo gate wait inside a page fix
    "log.force",      # one log write/force, attrs = io kind (placement)
    "piece.work",     # participant: remote piece execution
    "piece.prepare",  # participant: prepare record forced
    "piece.indoubt",  # participant: vote-to-decision in-doubt window
    "restart.scan",   # crash restart: log scan
    "restart.redo",   # crash restart: redo pass
    "media.restore",  # media recovery: archive restore + log redo
})


class Tracer:
    """Bounded, sampled span sink shared by one system's components.

    All per-node views created with :meth:`for_node` append into the
    same buffer, so a cluster run yields one chronologically grouped
    span stream with per-node ``node`` tags.
    """

    __slots__ = ("env", "node", "sample", "max_spans", "spans",
                 "_shared", "_rng")

    def __init__(self, env, streams=None, sample: int = 1,
                 max_spans: int = 250_000, node: int = 0):
        self.env = env
        self.node = node
        self.sample = max(1, int(sample))
        self.max_spans = max_spans
        self.spans: List[Span] = []
        #: Shared mutable state (aliased by every node view): spans
        #: dropped after the buffer filled, and the warm-up boundary.
        self._shared = {"dropped": 0, "measure_start": 0.0}
        self._rng = (streams.stream("trace-sample")
                     if streams is not None and self.sample > 1 else None)

    def for_node(self, node_id: int) -> "Tracer":
        """A view writing into the same buffer with a different node tag."""
        view = Tracer.__new__(Tracer)
        view.env = self.env
        view.node = node_id
        view.sample = self.sample
        view.max_spans = self.max_spans
        view.spans = self.spans
        view._shared = self._shared
        view._rng = self._rng
        return view

    @property
    def dropped(self) -> int:
        """Spans discarded after the buffer filled (bounded memory)."""
        return self._shared["dropped"]

    @property
    def measure_start(self) -> float:
        """Warm-up boundary: attribution only trusts root spans that
        start at or after this instant (their children are complete)."""
        return self._shared["measure_start"]

    # -- sampling ---------------------------------------------------------
    def admit(self, tx) -> bool:
        """Sampling decision for a new transaction (sets ``tx.traced``).

        ``sample == 1`` traces everything without consuming any random
        bits; larger N traces each transaction with probability 1/N
        from the dedicated ``trace-sample`` substream.
        """
        if self.sample == 1:
            tx.traced = True
            return True
        traced = self._rng.random() * self.sample < 1.0
        tx.traced = traced
        return traced

    # -- recording --------------------------------------------------------
    def span(self, name: str, tx_id: Optional[int], t0: float, t1: float,
             attrs=None) -> None:
        """Record one completed span (no-op once the buffer is full)."""
        if len(self.spans) < self.max_spans:
            self.spans.append((name, tx_id, self.node, t0, t1, attrs))
        else:
            self._shared["dropped"] += 1

    def clear(self) -> None:
        """Drop everything recorded so far and mark the warm-up
        boundary, so the spans describe the measured window only."""
        self.spans.clear()
        self._shared["dropped"] = 0
        self._shared["measure_start"] = self.env.now
