"""Simulation-time telemetry: periodic gauge samples during a run.

:class:`TelemetrySampler` is an ordinary simulation process that wakes
every ``interval`` simulated seconds and appends one gauge record to a
bounded in-memory series — commits/TPS, buffer hit ratio, lock-queue
depth, input-queue length, CPU and device utilization, and whether the
system is currently in an outage or degraded window.  The finalized
series lands in ``Results.timeseries`` (and from there in the JSON
export and the run journal, where ``repro watch`` can sparkline it).

The sampler only *reads* state — it draws no random variates and
mutates nothing — so enabling it does not change what the simulation
computes; it does add one pending timeout to the event calendar, which
is why it stays off by default and outside the golden-checksum runs.

It duck-types over both :class:`~repro.core.model.TransactionSystem`
and :class:`~repro.cluster.system.ClusterSystem` (the latter exposes
``nodes``; gauges are then aggregated across them).
"""

from __future__ import annotations

from typing import Dict, Generator, List

__all__ = ["TelemetrySampler"]


class TelemetrySampler:
    """Periodic gauge sampling over one (possibly multi-node) system."""

    def __init__(self, system, interval: float, max_samples: int = 10_000):
        if interval <= 0:
            raise ValueError("telemetry interval must be positive")
        self.system = system
        self.interval = interval
        self.max_samples = max_samples
        self.samples: List[Dict] = []
        self.dropped = 0
        self._prev_committed = 0

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        self.system.env.process(self._run())

    def reset(self) -> None:
        """Warm-up boundary: the series describes the measured window."""
        self.samples.clear()
        self.dropped = 0
        self._prev_committed = self.system.metrics.committed

    def snapshot(self) -> List[Dict]:
        return list(self.samples)

    # -- sampling ---------------------------------------------------------
    def _nodes(self):
        return getattr(self.system, "nodes", None)

    def _gauges(self) -> Dict:
        system = self.system
        env = system.env
        metrics = system.metrics
        committed = metrics.committed
        tps = (committed - self._prev_committed) / self.interval
        self._prev_committed = committed
        access = metrics.page_access
        total = access.total()
        mm_hit = 0.0
        if total:
            mm_hit = (access.get("main_memory")
                      + access.get("memory_resident")) / total
        nodes = self._nodes()
        if nodes is None:
            lock_queue = system.locks.waiting_count()
            cpu_util = system.cpu.utilization
            util = {
                name: max(report.values()) if report else 0.0
                for name, report in
                system.storage.utilization_report().items()
            }
        else:
            lock_queue = sum(n.locks.waiting_count() for n in nodes)
            cpu_util = sum(n.cpu.utilization for n in nodes) / len(nodes)
            util = {}
            for node in nodes:
                for name, report in \
                        node.storage.utilization_report().items():
                    util[f"n{node.node_id}:{name}"] = (
                        max(report.values()) if report else 0.0)
        return {
            "t": env.now,
            "tps": tps,
            "committed": committed,
            "aborted": metrics.aborted,
            "lock_queue": lock_queue,
            "input_queue": system.tm.input_queue_length,
            "mm_hit": mm_hit,
            "cpu_util": cpu_util,
            "util": util,
            "outage": 1 if metrics._outages_open else 0,
            "degraded": 1 if metrics._degraded_open else 0,
        }

    def _run(self) -> Generator:
        env = self.system.env
        while True:
            yield env.timeout(self.interval)
            if len(self.samples) < self.max_samples:
                self.samples.append(self._gauges())
            else:
                self.dropped += 1
