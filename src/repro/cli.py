"""Command-line interface: run simulations and experiments from a shell.

Examples::

    python -m repro run --scheme nvem --rate 300 --duration 10
    python -m repro run --scheme disk --force --buffer-size 500
    python -m repro experiment list
    python -m repro experiment run fig4_1 --profile fast
    python -m repro experiment run --all --profile fast --parallel \\
        --json --csv --out artifacts/
    python -m repro experiment run --all --profile full --cache --resume
    python -m repro watch
    python -m repro cache stats
    python -m repro trace run fig4_1 --profile fast --summary
    python -m repro trace export fig4_1.trace.jsonl
    python -m repro trace summary fig4_1.trace.jsonl
    python -m repro trace-gen --out workload.trace --transactions 2000
    python -m repro trace-run --trace workload.trace --kind nvem --mm 500
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.config import PolicySpec, UpdateStrategy
from repro.core.model import TransactionSystem
from repro.experiments import api
from repro.experiments.defaults import (
    battery_dram_resident,
    debit_credit_config,
    disk_only,
    disk_with_nv_cache_write_buffer,
    flash_resident,
    memory_resident,
    nvem_resident,
    nvem_write_buffer,
    ssd_resident,
)
from repro.storage.registry import device_kinds, policy_kinds
from repro.workload.debit_credit import DebitCreditWorkload

__all__ = ["main"]

SCHEMES = {
    "disk": disk_only,
    "disk-cache-wb": disk_with_nv_cache_write_buffer,
    "nvem-wb": nvem_write_buffer,
    "ssd": ssd_resident,
    "flash": flash_resident,
    "battery-dram": battery_dram_resident,
    "nvem": nvem_resident,
    "memory": memory_resident,
}

#: Policy choices come from the registry, so user-registered kinds
#: (imported before main() runs) are accepted by --mm-policy too.
POLICIES = tuple(policy_kinds())


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TPSIM reproduction: extended storage architectures "
                    "for transaction processing (Rahm, 1991/92)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one Debit-Credit simulation")
    run.add_argument("--scheme", choices=sorted(SCHEMES), default="disk",
                     help="storage allocation (default: disk)")
    run.add_argument("--rate", type=float, default=300.0,
                     help="arrival rate in TPS (default: 300)")
    run.add_argument("--duration", type=float, default=10.0,
                     help="measured simulated seconds (default: 10)")
    run.add_argument("--warmup", type=float, default=3.0,
                     help="warm-up simulated seconds (default: 3)")
    run.add_argument("--buffer-size", type=int, default=2000,
                     help="main-memory buffer frames (default: 2000)")
    run.add_argument("--force", action="store_true",
                     help="use the FORCE update strategy")
    run.add_argument("--mm-policy", choices=POLICIES, default="lru",
                     help="main-memory buffer replacement policy "
                          "(default: lru, as in the paper)")
    run.add_argument("--seed", type=int, default=1)

    exp = sub.add_parser(
        "experiment",
        help="list or regenerate the paper's figures/tables",
    )
    exp_sub = exp.add_subparsers(dest="exp_command", required=True)

    exp_sub.add_parser("list", help="list registered experiments")

    exp_run = exp_sub.add_parser(
        "run", help="run one or more registered experiments")
    exp_run.add_argument("ids", nargs="*", metavar="ID",
                         help="experiment ids (see 'experiment list')")
    exp_run.add_argument("--all", action="store_true",
                         help="run every registered experiment")
    exp_run.add_argument("--profile", choices=("fast", "full"),
                         default="full",
                         help="sweep resolution (default: full)")
    exp_run.add_argument("--parallel", action="store_true",
                         help="schedule all points of all curves of all "
                              "selected experiments across one worker "
                              "pool (deterministic: identical output "
                              "to a serial run)")
    exp_run.add_argument("--workers", type=int, default=None,
                         metavar="N",
                         help="worker process count (implies --parallel; "
                              "default: CPU count)")
    exp_run.add_argument("--json", action="store_true",
                         help="write <out>/<id>.json per experiment")
    exp_run.add_argument("--csv", action="store_true",
                         help="write <out>/<id>.csv per experiment")
    exp_run.add_argument("--out", metavar="DIR", default=None,
                         help="output directory for --json/--csv")
    exp_run.add_argument("--seed", type=int, default=None, metavar="N",
                         help="override every spec's base seed (per-point "
                              "seeds still derive deterministically), so "
                              "sweeps and crash schedules are reproducible "
                              "from the command line")
    exp_run.add_argument("--cache", action="store_true",
                         help="serve unchanged points from the "
                              "content-addressed result cache and store "
                              "fresh ones (byte-identical to recomputing; "
                              "REPRO_CACHE=1 makes this the default)")
    exp_run.add_argument("--no-cache", action="store_true",
                         help="disable the result cache even if "
                              "REPRO_CACHE/--cache-dir enable it")
    exp_run.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="cache root (implies --cache; default: "
                              "$REPRO_CACHE_DIR or ~/.cache/repro)")
    exp_run.add_argument("--resume", action="store_true",
                         help="reload completed points from this run's "
                              "checkpoint journal (an interrupted run "
                              "continues where it left off)")
    exp_run.add_argument("--journal", metavar="PATH", default=None,
                         help="checkpoint-journal path (default: auto "
                              "under <cache>/runs/ whenever caching or "
                              "--resume is active)")
    exp_run.add_argument("--cache-stats", metavar="PATH", default=None,
                         help="write run cache statistics (hits/misses/"
                              "elapsed) as JSON to PATH")

    cache = sub.add_parser(
        "cache",
        help="inspect or maintain the content-addressed result cache",
    )
    cache.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="cache root (default: $REPRO_CACHE_DIR or "
                            "~/.cache/repro)")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entry count, size and session traffic")
    cache_stats.add_argument("--json", action="store_true",
                             help="print machine-readable JSON")
    cache_gc = cache_sub.add_parser(
        "gc", help="evict old entries and/or cap the cache size")
    cache_gc.add_argument("--max-age-days", type=float, default=None,
                          help="drop entries older than this many days")
    cache_gc.add_argument("--max-bytes", type=int, default=None,
                          help="evict oldest-first until the cache fits")
    cache_sub.add_parser("clear", help="remove every cached point result")

    watch = sub.add_parser(
        "watch",
        help="tail an in-flight experiment run's checkpoint journal and "
             "render live per-figure progress",
    )
    watch.add_argument("journal", nargs="?", default=None, metavar="JOURNAL",
                       help="journal file to follow (default: the run "
                            "most recently started under <cache>/runs/)")
    watch.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="cache root to look for journals in")
    watch.add_argument("--interval", type=float, default=1.0,
                       help="refresh period in seconds (default: 1)")
    watch.add_argument("--once", action="store_true",
                       help="render one frame and exit (scripting/CI)")

    rec = sub.add_parser(
        "recovery",
        help="crash one Debit-Credit run and compare the simulated "
             "restart with the analytic RecoveryModel",
    )
    rec.add_argument("--scheme", choices=sorted(SCHEMES), default="disk",
                     help="storage allocation (default: disk)")
    rec.add_argument("--rate", type=float, default=50.0,
                     help="arrival rate in TPS (default: 50)")
    rec.add_argument("--interval", type=float, default=8.0,
                     help="fuzzy-checkpoint interval in s (default: 8)")
    rec.add_argument("--crash-at", type=float, default=None,
                     help="crash instant in s (default: 1.5 * interval, "
                          "i.e. half an interval after a checkpoint — "
                          "the analytic model's expected exposure)")
    rec.add_argument("--duration", type=float, default=None,
                     help="measured simulated seconds (default: sized to "
                          "cover crash + restart)")
    rec.add_argument("--warmup", type=float, default=2.0)
    rec.add_argument("--force", action="store_true",
                     help="use the FORCE update strategy")
    rec.add_argument("--seed", type=int, default=1)
    rec.add_argument("--media", action="store_true",
                     help="media-failure mode: lose a device mid-run and "
                          "rebuild it from the archive copy + log scan "
                          "while transactions keep running degraded")
    rec.add_argument("--lose", default="db0", metavar="DEVICE",
                     help="device lost in --media mode: a unit name, "
                          "'nvem', or a mirrored log copy 'log:0'/'log:1' "
                          "(default: db0)")
    rec.add_argument("--lose-at", type=float, default=8.0,
                     help="loss instant in s for --media (default: 8)")
    rec.add_argument("--archive-interval", type=float, default=6.0,
                     help="incremental-archive period in s for --media "
                          "(default: 6)")
    rec.add_argument("--mirror", action="store_true",
                     help="dual-copy NVEM log mirroring (requires an "
                          "NVEM log placement, e.g. --scheme nvem)")

    clu = sub.add_parser(
        "cluster",
        help="run one sharded multi-node Debit-Credit simulation with "
             "two-phase commit (optionally crashing a node)",
    )
    clu.add_argument("--nodes", type=int, default=4,
                     help="number of computing modules (default: 4)")
    clu.add_argument("--log", choices=("nvem", "disk"), default="nvem",
                     help="per-node log placement (default: nvem)")
    clu.add_argument("--rate", type=float, default=50.0,
                     help="arrival rate per node in TPS (default: 50)")
    clu.add_argument("--dist", type=float, default=0.15,
                     help="fraction of transactions touching a remote "
                          "account, committed via 2PC (default: 0.15)")
    clu.add_argument("--mpl", type=int, default=60,
                     help="multiprogramming level per node (default: 60)")
    clu.add_argument("--crash-at", type=float, default=None,
                     help="crash a node at this simulated instant "
                          "(in-doubt pieces resolve via GEM failover)")
    clu.add_argument("--crash-node", type=int, default=0,
                     help="node crashed by --crash-at (default: 0)")
    clu.add_argument("--failover-delay", type=float, default=0.25,
                     help="GEM failover delay in s (default: 0.25)")
    clu.add_argument("--interval", type=float, default=10.0,
                     help="per-node fuzzy-checkpoint interval in s "
                          "(default: 10)")
    clu.add_argument("--duration", type=float, default=10.0,
                     help="measured simulated seconds (default: 10)")
    clu.add_argument("--warmup", type=float, default=3.0,
                     help="warm-up simulated seconds (default: 3)")
    clu.add_argument("--seed", type=int, default=1)

    sub.add_parser("registry",
                   help="list registered device kinds and replacement "
                        "policies")

    bench = sub.add_parser(
        "bench",
        help="time (or profile) the kernel benchmark workloads",
    )
    bench.add_argument("workloads", nargs="*", metavar="WORKLOAD",
                       help="workload names (default: all; see --list)")
    bench.add_argument("--list", action="store_true",
                       help="list available workloads and exit")
    bench.add_argument("--repeats", type=int, default=3,
                       help="runs per workload; the minimum is reported "
                            "(default: 3)")
    bench.add_argument("--profile", metavar="PSTATS",
                       help="run under cProfile, write the pstats dump "
                            "to this path and print the top 25 "
                            "cumulative entries to stderr")

    trace = sub.add_parser(
        "trace",
        help="transaction-level tracing: record, export and summarize "
             "span traces of a registered experiment",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    trace_run = trace_sub.add_parser(
        "run", help="re-run one experiment with span tracing on and "
                    "write a JSONL trace (results are byte-identical "
                    "to the untraced run)")
    trace_run.add_argument("id", metavar="ID",
                           help="experiment id (see 'experiment list')")
    trace_run.add_argument("--out", metavar="PATH", default=None,
                           help="trace output path "
                                "(default: <id>.trace.jsonl)")
    trace_run.add_argument("--profile", choices=("fast", "full"),
                           default="fast",
                           help="sweep resolution (default: fast)")
    trace_run.add_argument("--sample", type=int, default=1, metavar="N",
                           help="trace every Nth transaction "
                                "(default: 1 = all)")
    trace_run.add_argument("--seed", type=int, default=None, metavar="N",
                           help="override the spec's base seed")
    trace_run.add_argument("--telemetry", type=float, default=0.0,
                           metavar="SECONDS",
                           help="also sample time-series gauges every "
                                "SECONDS of simulated time (default: off)")
    trace_run.add_argument("--summary", action="store_true",
                           help="print per-point latency attribution "
                                "after the run")

    trace_export = trace_sub.add_parser(
        "export", help="convert a JSONL trace to Chrome/Perfetto "
                       "trace-event JSON (open in ui.perfetto.dev)")
    trace_export.add_argument("trace", metavar="TRACE",
                              help="JSONL trace written by 'trace run'")
    trace_export.add_argument("--out", metavar="PATH", default=None,
                              help="output path "
                                   "(default: <trace>.perfetto.json)")

    trace_summary = trace_sub.add_parser(
        "summary", help="per-phase latency attribution tables from a "
                        "JSONL trace (phases sum to the measured "
                        "response time)")
    trace_summary.add_argument("trace", metavar="TRACE",
                               help="JSONL trace written by 'trace run'")
    trace_summary.add_argument("--validate", action="store_true",
                               help="schema-check every record while "
                                    "reading")

    gen = sub.add_parser("trace-gen",
                         help="generate a synthetic real-life trace")
    gen.add_argument("--out", required=True, help="output trace file")
    gen.add_argument("--transactions", type=int, default=2000)
    gen.add_argument("--accesses", type=int, default=120_000)
    gen.add_argument("--seed", type=int, default=42)

    trun = sub.add_parser("trace-run",
                          help="replay a trace file against a storage "
                               "configuration")
    trun.add_argument("--trace", required=True, help="trace file path")
    trun.add_argument("--kind", default="none",
                      choices=("none", "volatile", "nonvolatile", "nvem",
                               "ssd", "nvem-resident"))
    trun.add_argument("--mm", type=int, default=1000,
                      help="main-memory buffer frames (default: 1000)")
    trun.add_argument("--second", type=int, default=2000,
                      help="second-level cache pages (default: 2000)")
    trun.add_argument("--rate", type=float, default=25.0)
    trun.add_argument("--duration", type=float, default=30.0)
    trun.add_argument("--seed", type=int, default=1)
    return parser


def _cmd_run(args) -> int:
    strategy = UpdateStrategy.FORCE if args.force else \
        UpdateStrategy.NOFORCE
    scheme = SCHEMES[args.scheme]()
    scheme.mm_policy = PolicySpec(kind=args.mm_policy)
    config = debit_credit_config(
        scheme, update_strategy=strategy,
        buffer_size=args.buffer_size,
    )
    system = TransactionSystem(
        config, DebitCreditWorkload(arrival_rate=args.rate),
        seed=args.seed,
    )
    results = system.run(warmup=args.warmup, duration=args.duration)
    print(f"scheme={args.scheme} strategy={strategy.value} "
          f"rate={args.rate:g} TPS")
    print(results.summary())
    return 0


def _cmd_experiment_list(args) -> int:
    ids = api.experiment_ids()
    width = max(len(exp_id) for exp_id in ids)
    for exp_id in ids:
        spec = api.get_experiment(exp_id)
        print(f"{exp_id:<{width}}  {spec.title}")
    return 0


def _cmd_experiment_run(args) -> int:
    known = api.experiment_ids()
    if args.all:
        if args.ids:
            print("error: give experiment ids or --all, not both",
                  file=sys.stderr)
            return 2
        ids = known
    else:
        if not args.ids:
            print("error: no experiment ids given "
                  "(try 'repro experiment list' or --all)",
                  file=sys.stderr)
            return 2
        unknown = [i for i in args.ids if i not in known]
        if unknown:
            print(f"error: unknown experiment(s): {', '.join(unknown)}\n"
                  f"registered: {', '.join(known)}", file=sys.stderr)
            return 2
        ids = list(dict.fromkeys(args.ids))  # dedup, order preserved
    if (args.json or args.csv) and not args.out:
        print("error: --json/--csv need --out DIR", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 2
    if args.cache and args.no_cache:
        print("error: --cache and --no-cache conflict", file=sys.stderr)
        return 2

    env_cache = os.environ.get("REPRO_CACHE", "").lower() in \
        ("1", "true", "yes", "on")
    cache_enabled = (args.cache or args.resume or env_cache
                     or args.cache_dir is not None) and not args.no_cache
    store = None
    if cache_enabled:
        from repro.experiments.store import ResultStore

        store = ResultStore(args.cache_dir)
    # A journal is kept whenever it has a consumer: an explicit path,
    # a --resume, or an active cache (so `repro watch` always works).
    journal = args.journal if args.journal is not None else \
        bool(cache_enabled or args.resume)

    parallel = args.parallel or args.workers is not None
    runner = api.ExperimentRunner(parallel=parallel,
                                  max_workers=args.workers,
                                  seed=args.seed,
                                  store=store,
                                  journal=journal,
                                  resume=args.resume)
    results = runner.run(ids, profile=args.profile)

    exported = []
    if args.out and (args.json or args.csv):
        os.makedirs(args.out, exist_ok=True)
    for exp_id, result in results.items():
        spec = api.get_experiment(exp_id)
        print(spec.render(result))
        print()
        if args.json:
            from repro.experiments.export import write_json

            path = os.path.join(args.out, f"{exp_id}.json")
            write_json(result, path)
            exported.append(path)
        if args.csv:
            from repro.experiments.export import write_csv

            path = os.path.join(args.out, f"{exp_id}.csv")
            write_csv(result, path)
            exported.append(path)
    for path in exported:
        print(f"wrote {path}")

    stats = runner.last_stats
    if stats is not None:
        print(f"cache: {stats.hits} hit(s), {stats.misses} miss(es), "
              f"{stats.resumed} resumed, {stats.deduped} deduped "
              f"({stats.hit_rate * 100:.1f}% hit rate, "
              f"{stats.elapsed_s:.2f} s)", file=sys.stderr)
        if runner.last_journal_path:
            print(f"journal: {runner.last_journal_path}", file=sys.stderr)
    if args.cache_stats:
        import json as _json

        payload = stats.to_dict() if stats is not None else {}
        with open(args.cache_stats, "w", encoding="utf-8") as fh:
            _json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0


def _cmd_experiment(args) -> int:
    handlers = {
        "list": _cmd_experiment_list,
        "run": _cmd_experiment_run,
    }
    return handlers[args.exp_command](args)


def _cmd_cache(args) -> int:
    """Inspect or maintain the content-addressed result cache."""
    import json as _json

    from repro.experiments.store import ResultStore

    store = ResultStore(args.cache_dir)
    if args.cache_command == "stats":
        stats = store.stats()
        if args.json:
            print(_json.dumps(stats, indent=2, sort_keys=True))
        else:
            print(f"cache root : {stats['root']}")
            print(f"entries    : {stats['entries']}")
            print(f"size       : {stats['bytes'] / 1e6:.2f} MB")
        return 0
    if args.cache_command == "gc":
        if args.max_age_days is None and args.max_bytes is None:
            print("error: gc needs --max-age-days and/or --max-bytes",
                  file=sys.stderr)
            return 2
        report = store.gc(max_age_days=args.max_age_days,
                          max_bytes=args.max_bytes)
        print(f"removed {report['removed']} entries "
              f"({report['freed_bytes'] / 1e6:.2f} MB); "
              f"kept {report['kept']}")
        return 0
    removed = store.clear()
    print(f"removed {removed} cached point(s) from {store.root}")
    return 0


def _cmd_watch(args) -> int:
    """Follow an in-flight run's journal with live progress."""
    from repro.experiments.journal import find_latest_journal
    from repro.experiments.store import ResultStore
    from repro.experiments.watch import watch

    path = args.journal
    if path is None:
        runs_dir = str(ResultStore(args.cache_dir).runs_dir)
        path = find_latest_journal(runs_dir)
        if path is None:
            print(f"error: no run journals under {runs_dir} "
                  "(start one with 'repro experiment run --cache ...')",
                  file=sys.stderr)
            return 2
    elif not os.path.exists(path):
        print(f"error: no journal at {path}", file=sys.stderr)
        return 2
    try:
        return watch(path, interval=args.interval, once=args.once)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 130


def _cmd_recovery_media(args) -> int:
    """Lose a device mid-run and rebuild it through the real devices."""
    from repro.core.config import DeviceFault

    if args.lose_at <= args.warmup:
        print("error: the loss must fall inside the measured window "
              f"(loss at {args.lose_at:g} s <= warmup {args.warmup:g} s)",
              file=sys.stderr)
        return 2
    config = debit_credit_config(SCHEMES[args.scheme]())
    config.media.enabled = True
    config.media.faults = (
        DeviceFault(device=args.lose, time=args.lose_at, kind="loss"),
    )
    config.media.archive_interval = args.archive_interval
    # Coarser restore extents keep the multi-million-page rebuild
    # inside a short smoke window without changing its shape.
    config.media.archive_batch_pages = 4096
    config.recovery.log_mirror = args.mirror
    try:
        config.validate()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    duration = args.duration if args.duration is not None \
        else max(40.0, 4.0 * args.lose_at)
    system = TransactionSystem(
        config, DebitCreditWorkload(arrival_rate=args.rate),
        seed=args.seed,
    )
    results = system.run(warmup=args.warmup, duration=duration)
    print(f"scheme={args.scheme} rate={args.rate:g} TPS "
          f"lose {args.lose} at {args.lose_at:g} s "
          f"(archive every {args.archive_interval:g} s"
          f"{', mirrored log' if args.mirror else ''})")
    print(results.summary())
    for stats in system.media.recoveries:
        print(stats.summary())
    if not system.media.recoveries or results.media_mttr_mean <= 0:
        print("error: no media recovery completed inside the window "
              "(raise --duration)", file=sys.stderr)
        return 1
    return 0


def _cmd_recovery(args) -> int:
    """Run one crashed simulation and the analytic model side by side."""
    from repro.analysis.recovery import RecoveryModel  # noqa: F401 (doc)
    from repro.recovery import matched_recovery_model

    if args.media:
        return _cmd_recovery_media(args)
    strategy = UpdateStrategy.FORCE if args.force else \
        UpdateStrategy.NOFORCE
    if args.interval <= 0:
        print(f"error: --interval must be positive, got {args.interval:g}",
              file=sys.stderr)
        return 2
    crash_at = args.crash_at if args.crash_at is not None \
        else 1.5 * args.interval
    if crash_at <= 0:
        print(f"error: --crash-at must be positive, got {crash_at:g}",
              file=sys.stderr)
        return 2
    config = debit_credit_config(SCHEMES[args.scheme](),
                                 update_strategy=strategy)
    config.recovery.enabled = True
    config.recovery.checkpoint_interval = args.interval
    config.recovery.crash_times = (crash_at,)
    config.validate()
    if crash_at <= args.warmup:
        print("error: the crash must fall inside the measured window "
              f"(crash at {crash_at:g} s <= warmup {args.warmup:g} s)",
              file=sys.stderr)
        return 2
    duration = args.duration
    if duration is None:
        # Generous default: the window must contain the crash and the
        # full restart, or no crash completes inside measurement.
        duration = max(20.0, 4.0 * crash_at)

    system = TransactionSystem(
        config, DebitCreditWorkload(arrival_rate=args.rate),
        seed=args.seed,
    )
    results = system.run(warmup=args.warmup, duration=duration)
    print(f"scheme={args.scheme} strategy={strategy.value} "
          f"rate={args.rate:g} TPS interval={args.interval:g} s "
          f"crash at {crash_at:g} s")
    print(results.summary())
    restarts = system.recovery.crash_controller.restarts
    for stats in restarts:
        print("simulated " + stats.summary())

    model = matched_recovery_model(config, update_tps=args.rate)
    estimate = model.estimate(strategy)
    print("analytic  " + estimate.summary()
          + f"  [{strategy.value}, matched devices]")
    if restarts:
        simulated = restarts[-1].total
        if estimate.total > 0:
            print(f"simulated/analytic ratio: "
                  f"{simulated / estimate.total:.2f} (the analytic "
                  f"model assumes 3 distinct pages per update tx and "
                  f"50% already propagated; the simulation measures "
                  f"both)")
    return 0


def _cmd_cluster(args) -> int:
    """Run one cluster simulation and report the 2PC/cost numbers."""
    from repro.cluster import cluster_config, node_scheme
    from repro.cluster.workload import ShardedDebitCreditWorkload

    if args.nodes < 1:
        print(f"error: --nodes must be >= 1, got {args.nodes}",
              file=sys.stderr)
        return 2
    if not 0.0 <= args.dist <= 1.0:
        print(f"error: --dist must be in [0, 1], got {args.dist:g}",
              file=sys.stderr)
        return 2
    crash_schedule = ()
    if args.crash_at is not None:
        if args.crash_at <= args.warmup:
            print("error: the crash must fall inside the measured "
                  f"window (crash at {args.crash_at:g} s <= warmup "
                  f"{args.warmup:g} s)", file=sys.stderr)
            return 2
        if not 0 <= args.crash_node < args.nodes:
            print(f"error: --crash-node {args.crash_node} out of range "
                  f"for {args.nodes} node(s)", file=sys.stderr)
            return 2
        crash_schedule = ((args.crash_node, args.crash_at),)
    config = cluster_config(
        scheme=node_scheme(log=args.log),
        num_nodes=args.nodes,
        mpl=args.mpl,
        gem_failover_delay=args.failover_delay,
        crash_schedule=crash_schedule,
        checkpoint_interval=args.interval,
        seed=args.seed,
    )
    workload = ShardedDebitCreditWorkload.for_cluster(
        config, arrival_rate_per_node=args.rate,
        distributed_fraction=args.dist,
    )
    system = config.build_system(workload, seed=args.seed)
    results = system.run(warmup=args.warmup, duration=args.duration)
    print(f"nodes={args.nodes} log={args.log} rate={args.rate:g} "
          f"TPS/node dist={args.dist:g}")
    print(results.summary())
    for share in system.node_results():
        print(f"  node {share.node_id}: {share.committed} committed, "
              f"cpu {share.cpu_utilization * 100:5.1f} %")
    messages = system.message_stats()
    if messages.get("messages"):
        pairs = ", ".join(f"{kind}={count}" for kind, count in
                          sorted(messages.items()) if kind != "messages")
        print(f"  messages: {messages['messages']} ({pairs})")
    for node_id, stats in system.faults.restarts:
        print(f"  node {node_id} " + stats.summary())
    return 0


def _cmd_trace(args) -> int:
    """Record, export or summarize transaction-level span traces."""
    if args.trace_command == "run":
        from repro.trace import run_traced

        if args.id not in api.experiment_ids():
            print(f"error: unknown experiment {args.id!r} "
                  "(try 'repro experiment list')", file=sys.stderr)
            return 2
        if args.sample < 1:
            print(f"error: --sample must be >= 1, got {args.sample}",
                  file=sys.stderr)
            return 2
        out = args.out or f"{args.id}.trace.jsonl"
        result, header, points = run_traced(
            args.id, out, profile=args.profile, sample=args.sample,
            seed=args.seed, telemetry=args.telemetry,
        )
        spans = sum(len(p["spans"]) for p in points)
        dropped = sum(p["dropped"] for p in points)
        print(f"wrote {out}: {len(points)} point(s), {spans} span(s)"
              + (f", {dropped} dropped (raise max_spans)" if dropped
                 else ""))
        if args.summary:
            from repro.trace import attribute, render_attribution

            for point in points:
                summary = attribute(point["spans"],
                                    point["measure_start"])
                label = (f"{header['experiment']} {point['series']} "
                         f"x={point['x']:g}")
                print()
                print(render_attribution(label, summary,
                                         measured_ms=point["response_ms"]))
        return 0
    if args.trace_command == "export":
        from repro.trace import write_perfetto

        if not os.path.exists(args.trace):
            print(f"error: no trace at {args.trace}", file=sys.stderr)
            return 2
        out = args.out or f"{args.trace}.perfetto.json"
        events = write_perfetto(args.trace, out)
        print(f"wrote {out}: {events} trace event(s) "
              "(open in ui.perfetto.dev)")
        return 0
    from repro.trace import read_trace, render_attribution, trace_points

    if not os.path.exists(args.trace):
        print(f"error: no trace at {args.trace}", file=sys.stderr)
        return 2
    header, _, _ = read_trace(args.trace)
    print(f"trace of {header['experiment']} "
          f"(profile={header['profile']}, sample=1/{header['sample']}, "
          f"seed={header['seed']})")
    for point, summary in trace_points(args.trace,
                                       validate=args.validate):
        label = (f"{point['series']} x={point['x']:g}")
        print()
        print(render_attribution(label, summary,
                                 measured_ms=point["response_ms"]))
    return 0


def _cmd_trace_gen(args) -> int:
    from repro.workload.trace import write_trace
    from repro.workload.tracegen import RealWorkloadProfile, generate_trace

    profile = RealWorkloadProfile(
        num_transactions=args.transactions,
        target_accesses=args.accesses,
        adhoc_count=1 if args.transactions >= 500 else 0,
        adhoc_accesses=min(11_200, max(1000, args.accesses // 20)),
    )
    trace = generate_trace(profile, seed=args.seed)
    write_trace(trace, args.out)
    print(f"wrote {args.out}: {len(trace)} transactions, "
          f"{trace.num_accesses} accesses, "
          f"{trace.write_fraction * 100:.2f}% writes, "
          f"{trace.distinct_pages} distinct pages")
    return 0


def _cmd_trace_run(args) -> int:
    from repro.experiments.trace_setup import trace_config
    from repro.workload.trace import TraceWorkload, read_trace

    trace = read_trace(args.trace)
    config = trace_config(trace, args.kind, args.mm,
                          second_level=args.second, seed=args.seed)
    workload = TraceWorkload(trace, arrival_rate=args.rate, loop=True)
    system = TransactionSystem(config, workload, seed=args.seed)
    results = system.run(warmup=4.0, duration=args.duration)
    mean_size = trace.mean_tx_size
    print(f"trace={args.trace} kind={args.kind} mm={args.mm} "
          f"second={args.second}")
    print(results.summary())
    print(f"normalized response ({mean_size:.1f}-access tx): "
          f"{results.normalized_response_time(mean_size) * 1000:.1f} ms")
    return 0


def _cmd_registry(args) -> int:
    print("device kinds       :", ", ".join(device_kinds()))
    print("replacement policies:", ", ".join(policy_kinds()))
    return 0


def _cmd_bench(args) -> int:
    """Time or profile kernel workloads (same code the tracked
    ``benchmarks/kernel_bench.py`` harness runs)."""
    from repro.bench import WORKLOADS

    if args.list:
        width = max(len(name) for name in WORKLOADS)
        for name, (_fn, desc) in WORKLOADS.items():
            print(f"{name:<{width}}  {desc}")
        return 0
    names = args.workloads or list(WORKLOADS)
    unknown = sorted(set(names) - set(WORKLOADS))
    if unknown:
        print(f"unknown workload(s): {', '.join(unknown)} "
              f"(try 'repro bench --list')", file=sys.stderr)
        return 2
    if args.repeats < 1:
        print("--repeats must be >= 1", file=sys.stderr)
        return 2

    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        for name in names:
            fn = WORKLOADS[name][0]
            fn()  # warm-up outside the profile (imports, caches)
            profiler.enable()
            for _ in range(args.repeats):
                fn()
            profiler.disable()
        profiler.dump_stats(args.profile)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)
        print(f"wrote cProfile dump to {args.profile} "
              f"(inspect with: python -m pstats {args.profile})",
              file=sys.stderr)
        return 0

    width = max(len(name) for name in names)
    for name in names:
        fn, desc = WORKLOADS[name]
        fn()  # warm-up
        best = min(
            _timed_ms(fn) for _ in range(args.repeats)
        )
        print(f"{name:<{width}}  {best:9.2f} ms  {desc}")
    return 0


def _timed_ms(fn) -> float:
    import time

    t0 = time.perf_counter()
    fn()
    return (time.perf_counter() - t0) * 1e3


def _upgrade_legacy_experiment_argv(argv: List[str]) -> List[str]:
    """Rewrite the pre-registry syntax ``experiment <id> [--fast]``
    (flags and id in any order) to ``experiment run <id> [--profile
    fast]`` with a deprecation note."""
    if len(argv) < 2 or argv[0] != "experiment":
        return argv
    # The old parser accepted intermixed order (e.g. ``--fast fig4_1``):
    # the first non-flag token is the experiment id.
    positionals = [a for a in argv[1:] if not a.startswith("-")]
    if not positionals or positionals[0] in ("list", "run"):
        return argv
    head = positionals[0]
    rest = []
    for arg in argv[1:]:
        if arg == head:
            continue
        if arg == "--fast":
            rest.extend(["--profile", "fast"])
        else:
            rest.append(arg)
    upgraded = ["experiment", "run", head, *rest]
    print("note: 'repro experiment <id> [--fast]' is deprecated; use "
          f"'repro {' '.join(upgraded)}'", file=sys.stderr)
    return upgraded


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    argv = _upgrade_legacy_experiment_argv(argv)
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "experiment": _cmd_experiment,
        "cache": _cmd_cache,
        "watch": _cmd_watch,
        "recovery": _cmd_recovery,
        "cluster": _cmd_cluster,
        "registry": _cmd_registry,
        "bench": _cmd_bench,
        "trace": _cmd_trace,
        "trace-gen": _cmd_trace_gen,
        "trace-run": _cmd_trace_run,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
