"""Command-line interface: run simulations and experiments from a shell.

Examples::

    python -m repro run --scheme nvem --rate 300 --duration 10
    python -m repro run --scheme disk --force --buffer-size 500
    python -m repro experiment fig4_1 --fast
    python -m repro trace-gen --out workload.trace --transactions 2000
    python -m repro trace-run --trace workload.trace --kind nvem --mm 500
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.config import PolicySpec, UpdateStrategy
from repro.core.model import TransactionSystem
from repro.experiments.defaults import (
    battery_dram_resident,
    debit_credit_config,
    disk_only,
    disk_with_nv_cache_write_buffer,
    flash_resident,
    memory_resident,
    nvem_resident,
    nvem_write_buffer,
    ssd_resident,
)
from repro.storage.registry import device_kinds, policy_kinds
from repro.workload.debit_credit import DebitCreditWorkload

__all__ = ["main"]

SCHEMES = {
    "disk": disk_only,
    "disk-cache-wb": disk_with_nv_cache_write_buffer,
    "nvem-wb": nvem_write_buffer,
    "ssd": ssd_resident,
    "flash": flash_resident,
    "battery-dram": battery_dram_resident,
    "nvem": nvem_resident,
    "memory": memory_resident,
}

#: Policy choices come from the registry, so user-registered kinds
#: (imported before main() runs) are accepted by --mm-policy too.
POLICIES = tuple(policy_kinds())

EXPERIMENTS = ("fig4_1", "fig4_2", "fig4_3", "fig4_4", "fig4_5",
               "fig4_6", "fig4_7", "fig4_8", "table4_2")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TPSIM reproduction: extended storage architectures "
                    "for transaction processing (Rahm, 1991/92)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one Debit-Credit simulation")
    run.add_argument("--scheme", choices=sorted(SCHEMES), default="disk",
                     help="storage allocation (default: disk)")
    run.add_argument("--rate", type=float, default=300.0,
                     help="arrival rate in TPS (default: 300)")
    run.add_argument("--duration", type=float, default=10.0,
                     help="measured simulated seconds (default: 10)")
    run.add_argument("--warmup", type=float, default=3.0,
                     help="warm-up simulated seconds (default: 3)")
    run.add_argument("--buffer-size", type=int, default=2000,
                     help="main-memory buffer frames (default: 2000)")
    run.add_argument("--force", action="store_true",
                     help="use the FORCE update strategy")
    run.add_argument("--mm-policy", choices=POLICIES, default="lru",
                     help="main-memory buffer replacement policy "
                          "(default: lru, as in the paper)")
    run.add_argument("--seed", type=int, default=1)

    exp = sub.add_parser("experiment",
                         help="regenerate a figure/table of the paper")
    exp.add_argument("id", choices=EXPERIMENTS)
    exp.add_argument("--fast", action="store_true",
                     help="reduced sweep (benchmark settings)")
    exp.add_argument("--parallel", action="store_true",
                     help="evaluate sweep points across worker processes "
                          "(deterministic; ignored with --fast)")

    sub.add_parser("registry",
                   help="list registered device kinds and replacement "
                        "policies")

    gen = sub.add_parser("trace-gen",
                         help="generate a synthetic real-life trace")
    gen.add_argument("--out", required=True, help="output trace file")
    gen.add_argument("--transactions", type=int, default=2000)
    gen.add_argument("--accesses", type=int, default=120_000)
    gen.add_argument("--seed", type=int, default=42)

    trun = sub.add_parser("trace-run",
                          help="replay a trace file against a storage "
                               "configuration")
    trun.add_argument("--trace", required=True, help="trace file path")
    trun.add_argument("--kind", default="none",
                      choices=("none", "volatile", "nonvolatile", "nvem",
                               "ssd", "nvem-resident"))
    trun.add_argument("--mm", type=int, default=1000,
                      help="main-memory buffer frames (default: 1000)")
    trun.add_argument("--second", type=int, default=2000,
                      help="second-level cache pages (default: 2000)")
    trun.add_argument("--rate", type=float, default=25.0)
    trun.add_argument("--duration", type=float, default=30.0)
    trun.add_argument("--seed", type=int, default=1)
    return parser


def _cmd_run(args) -> int:
    strategy = UpdateStrategy.FORCE if args.force else \
        UpdateStrategy.NOFORCE
    scheme = SCHEMES[args.scheme]()
    scheme.mm_policy = PolicySpec(kind=args.mm_policy)
    config = debit_credit_config(
        scheme, update_strategy=strategy,
        buffer_size=args.buffer_size,
    )
    system = TransactionSystem(
        config, DebitCreditWorkload(arrival_rate=args.rate),
        seed=args.seed,
    )
    results = system.run(warmup=args.warmup, duration=args.duration)
    print(f"scheme={args.scheme} strategy={strategy.value} "
          f"rate={args.rate:g} TPS")
    print(results.summary())
    return 0


def _cmd_experiment(args) -> int:
    import importlib
    import inspect

    module = importlib.import_module(f"repro.experiments.{args.id}")
    kwargs = {"fast": args.fast}
    if "parallel" in inspect.signature(module.run).parameters:
        kwargs["parallel"] = args.parallel
    result = module.run(**kwargs)
    if args.id == "table4_2":
        print(result["a"].to_table())
        print()
        print(result["b"].to_table())
    elif args.id in ("fig4_6", "fig4_7"):
        print(module.normalized_table(result))
    else:
        print(result.to_table())
    return 0


def _cmd_trace_gen(args) -> int:
    from repro.workload.trace import write_trace
    from repro.workload.tracegen import RealWorkloadProfile, generate_trace

    profile = RealWorkloadProfile(
        num_transactions=args.transactions,
        target_accesses=args.accesses,
        adhoc_count=1 if args.transactions >= 500 else 0,
        adhoc_accesses=min(11_200, max(1000, args.accesses // 20)),
    )
    trace = generate_trace(profile, seed=args.seed)
    write_trace(trace, args.out)
    print(f"wrote {args.out}: {len(trace)} transactions, "
          f"{trace.num_accesses} accesses, "
          f"{trace.write_fraction * 100:.2f}% writes, "
          f"{trace.distinct_pages} distinct pages")
    return 0


def _cmd_trace_run(args) -> int:
    from repro.experiments.trace_setup import trace_config
    from repro.workload.trace import TraceWorkload, read_trace

    trace = read_trace(args.trace)
    config = trace_config(trace, args.kind, args.mm,
                          second_level=args.second, seed=args.seed)
    workload = TraceWorkload(trace, arrival_rate=args.rate, loop=True)
    system = TransactionSystem(config, workload, seed=args.seed)
    results = system.run(warmup=4.0, duration=args.duration)
    mean_size = trace.mean_tx_size
    print(f"trace={args.trace} kind={args.kind} mm={args.mm} "
          f"second={args.second}")
    print(results.summary())
    print(f"normalized response ({mean_size:.1f}-access tx): "
          f"{results.normalized_response_time(mean_size) * 1000:.1f} ms")
    return 0


def _cmd_registry(args) -> int:
    print("device kinds       :", ", ".join(device_kinds()))
    print("replacement policies:", ", ".join(policy_kinds()))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "experiment": _cmd_experiment,
        "registry": _cmd_registry,
        "trace-gen": _cmd_trace_gen,
        "trace-run": _cmd_trace_run,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
